// Tests of the monotone fixed-point driver.
#include <gtest/gtest.h>

#include "base/fixed_point.h"
#include "base/math.h"

namespace tfa {
namespace {

TEST(FixedPoint, FindsLeastFixedPointOfBusyPeriodEquation) {
  // B = ceil(B/36)*4*4: the paper example's B_1^slow = 16.
  const auto r = iterate_fixed_point(
      16, [](Duration b) { return ceil_div(b, 36) * 16; }, 1 << 20);
  ASSERT_TRUE(r.converged());
  EXPECT_EQ(r.value, 16);
}

TEST(FixedPoint, ConvergesFromSeedBelow) {
  // x = min(x + 3, 30): least fixed point above seed 0 is 30.
  const auto r = iterate_fixed_point(
      0, [](Duration x) { return x >= 30 ? 30 : x + 3; }, 1000);
  ASSERT_TRUE(r.converged());
  EXPECT_EQ(r.value, 30);
}

TEST(FixedPoint, ReportsDivergenceAtCeiling) {
  // Utilisation 1: B = B + 1 never stabilises.
  const auto r = iterate_fixed_point(
      1, [](Duration b) { return b + 1; }, 500);
  EXPECT_EQ(r.status, FixedPointStatus::kDiverged);
  EXPECT_TRUE(is_infinite(r.value));
}

TEST(FixedPoint, ImmediateFixedPoint) {
  const auto r = iterate_fixed_point(
      7, [](Duration x) { return x; }, 100);
  ASSERT_TRUE(r.converged());
  EXPECT_EQ(r.value, 7);
  EXPECT_EQ(r.iterations, 0u);
}

TEST(FixedPoint, MaxIterationsBudgetRespected) {
  const auto r = iterate_fixed_point(
      0, [](Duration x) { return x + 1; }, Duration{1} << 40,
      /*max_iterations=*/10);
  EXPECT_EQ(r.status, FixedPointStatus::kMaxIterations);
  EXPECT_EQ(r.value, 10);
}

TEST(FixedPointTrace, RecordsSeedAndEveryIterate) {
  FixedPointTrace trace;
  const auto r = iterate_fixed_point(
      0, [](Duration x) { return x >= 9 ? 9 : x + 3; }, 1000,
      /*max_iterations=*/1u << 20, &trace);
  ASSERT_TRUE(r.converged());
  EXPECT_EQ(r.value, 9);
  // Seed first, least fixed point last: the climb 0 -> 3 -> 6 -> 9.
  EXPECT_EQ(trace.iterates, (std::vector<Duration>{0, 3, 6, 9}));
  EXPECT_EQ(trace.iterates.back(), r.value);
  EXPECT_EQ(trace.iterates.size(), r.iterations + 1);
}

TEST(FixedPointTrace, ImmediateConvergenceRecordsOnlySeed) {
  FixedPointTrace trace;
  const auto r = iterate_fixed_point(
      7, [](Duration x) { return x; }, 100, /*max_iterations=*/1u << 20,
      &trace);
  ASSERT_TRUE(r.converged());
  EXPECT_EQ(trace.iterates, (std::vector<Duration>{7}));
}

TEST(FixedPointTrace, DivergenceRecordsClimbUpToCeiling) {
  FixedPointTrace trace;
  const auto r = iterate_fixed_point(
      1, [](Duration b) { return b * 2; }, 8, /*max_iterations=*/1u << 20,
      &trace);
  EXPECT_EQ(r.status, FixedPointStatus::kDiverged);
  // 1 -> 2 -> 4 -> 8 -> 16: the crossing iterate is recorded, so the
  // telemetry shows where the climb left the ceiling.
  EXPECT_EQ(trace.iterates, (std::vector<Duration>{1, 2, 4, 8, 16}));
  EXPECT_GT(trace.iterates.back(), 8);
}

TEST(FixedPoint, DecreasingIterateReportsDivergence) {
  // A monotone operator iterated from below never decreases; a decrease
  // means the operator wrapped (signed overflow) or broke its contract.
  // The driver must report divergence in *release* builds — soundness
  // cannot depend on asserts being compiled in.
  const auto r = iterate_fixed_point(
      10, [](Duration x) { return x == 10 ? Duration{20} : Duration{5}; },
      1 << 20);
  EXPECT_EQ(r.status, FixedPointStatus::kDiverged);
  EXPECT_EQ(r.value, kInfiniteDuration);
}

TEST(FixedPoint, WrappedNegativeIterateReportsDivergence) {
  // Simulates an unguarded operator whose product wrapped negative.
  const auto r = iterate_fixed_point(
      1, [](Duration x) { return x < 100 ? x * 3 : -kInfiniteDuration + x; },
      kInfiniteDuration - 1);
  EXPECT_EQ(r.status, FixedPointStatus::kDiverged);
  EXPECT_EQ(r.value, kInfiniteDuration);
}

TEST(FixedPointTrace, NullTraceKeepsBehaviourIdentical) {
  FixedPointTrace trace;
  const auto with = iterate_fixed_point(
      0, [](Duration x) { return x >= 30 ? 30 : x + 3; }, 1000,
      /*max_iterations=*/1u << 20, &trace);
  const auto without = iterate_fixed_point(
      0, [](Duration x) { return x >= 30 ? 30 : x + 3; }, 1000);
  EXPECT_EQ(with.status, without.status);
  EXPECT_EQ(with.value, without.value);
  EXPECT_EQ(with.iterations, without.iterations);
}

}  // namespace
}  // namespace tfa
