// Exact-boundary coverage of the saturating checked ops (base/checked.h):
// every op at INT64_MAX / INT64_MIN / kInfiniteDuration +- 1, the closure
// property (no op ever returns past kInfiniteDuration, and the sentinel
// is absorbing), and the deliberate upward saturation of negative
// overflow — a wrapped-negative window must never undercount packets.
#include "base/checked.h"

#include <gtest/gtest.h>

#include <cstdint>

#include "base/math.h"
#include "base/types.h"

namespace tfa {
namespace {

constexpr Duration kInf = kInfiniteDuration;

TEST(SatAdd, PlainSumsAreExact) {
  EXPECT_EQ(sat_add(0, 0), 0);
  EXPECT_EQ(sat_add(3, 4), 7);
  EXPECT_EQ(sat_add(-5, 2), -3);
  EXPECT_EQ(sat_add(kInf - 2, 1), kInf - 1);
}

TEST(SatAdd, SaturatesAtTheSentinel) {
  EXPECT_EQ(sat_add(kInf - 1, 1), kInf);
  EXPECT_EQ(sat_add(kInf, 0), kInf);
  EXPECT_EQ(sat_add(kInf, -1), kInf);  // absorbing, even minus something
  EXPECT_EQ(sat_add(kInf + 1, 0), kInf);
  EXPECT_EQ(sat_add(INT64_MAX, 0), kInf);
}

TEST(SatAdd, SaturatesOnInt64Overflow) {
  EXPECT_EQ(sat_add(INT64_MAX, 1), kInf);
  EXPECT_EQ(sat_add(INT64_MAX, INT64_MAX), kInf);
  EXPECT_EQ(sat_add(INT64_MAX - 1, 2), kInf);
}

TEST(SatAdd, NegativeOverflowSaturatesUpward) {
  // INT64_MIN + -1 wraps positive in plain arithmetic; the sound report
  // for a window that left int64 is "unbounded", never a finite value.
  EXPECT_EQ(sat_add(INT64_MIN, -1), kInf);
  EXPECT_EQ(sat_add(INT64_MIN, INT64_MIN), kInf);
  EXPECT_EQ(sat_add(INT64_MIN, 0), INT64_MIN);  // exact: no overflow
  EXPECT_EQ(sat_add(INT64_MIN + 1, -1), INT64_MIN);
}

TEST(SatMul, PlainProductsAreExact) {
  EXPECT_EQ(sat_mul(0, kInf - 1), 0);
  EXPECT_EQ(sat_mul(6, 7), 42);
  EXPECT_EQ(sat_mul(-3, 4), -12);
  EXPECT_EQ(sat_mul(1, kInf - 1), kInf - 1);
}

TEST(SatMul, SaturatesAtTheSentinel) {
  EXPECT_EQ(sat_mul(kInf, 1), kInf);
  EXPECT_EQ(sat_mul(kInf, 0), kInf);  // absorbing by contract
  EXPECT_EQ(sat_mul(kInf + 1, 1), kInf);
  EXPECT_EQ(sat_mul(INT64_MAX, 1), kInf);
  EXPECT_EQ(sat_mul((kInf / 2) + 1, 2), kInf);
}

TEST(SatMul, SaturatesOnInt64Overflow) {
  EXPECT_EQ(sat_mul(INT64_MAX / 2 + 1, 2), kInf);
  EXPECT_EQ(sat_mul(Duration{1} << 32, Duration{1} << 32), kInf);
  EXPECT_EQ(sat_mul(INT64_MIN, -1), kInf);  // the classic wrap case
  EXPECT_EQ(sat_mul(INT64_MIN, 2), kInf);   // negative overflow, upward
}

TEST(SatCeilDivMul, MatchesPlainArithmeticWhenSafe) {
  EXPECT_EQ(sat_ceil_div_mul(10, 3, 5), ceil_div(10, 3) * 5);
  EXPECT_EQ(sat_ceil_div_mul(0, 7, 9), 0);
  EXPECT_EQ(sat_ceil_div_mul(-10, 3, 5), ceil_div(-10, 3) * 5);
}

TEST(SatCeilDivMul, SaturatesOnInfiniteWindowOrHugeProduct) {
  EXPECT_EQ(sat_ceil_div_mul(kInf, 1, 1), kInf);
  EXPECT_EQ(sat_ceil_div_mul(kInf + 1, 1, 1), kInf);
  EXPECT_EQ(sat_ceil_div_mul(kInf - 1, 1, 2), kInf);
  EXPECT_EQ(sat_ceil_div_mul(kInf - 1, 2, Duration{1} << 40), kInf);
}

TEST(SatSporadicTerm, MatchesPlainArithmeticWhenSafe) {
  EXPECT_EQ(sat_sporadic_term(10, 4, 3), sporadic_count(10, 4) * 3);
  EXPECT_EQ(sat_sporadic_term(-1, 4, 3), 0);  // negative window: 0 packets
  EXPECT_EQ(sat_sporadic_term(0, 4, 3), 3);   // one packet at the edge
}

TEST(SatSporadicTerm, SaturatesOnInfiniteWindowOrHugeProduct) {
  EXPECT_EQ(sat_sporadic_term(kInf, 1, 1), kInf);
  EXPECT_EQ(sat_sporadic_term(kInf + 1, 1, 0), kInf);
  EXPECT_EQ(sat_sporadic_term(kInf - 1, 1, 2), kInf);
  EXPECT_EQ(sat_sporadic_term(kInf - 1, 2, Duration{1} << 40), kInf);
}

TEST(CheckedRoundUp, MatchesRoundUpWhenSafe) {
  EXPECT_EQ(checked_round_up(0, 5), round_up(0, 5));
  EXPECT_EQ(checked_round_up(7, 5), round_up(7, 5));
  EXPECT_EQ(checked_round_up(10, 5), round_up(10, 5));
}

TEST(CheckedRoundUp, SaturatesNearTheEdge) {
  EXPECT_EQ(checked_round_up(kInf, 4096), kInf);
  EXPECT_EQ(checked_round_up(kInf + 1, 4096), kInf);
  EXPECT_EQ(checked_round_up(kInf - 1, 4096), kInf);  // rounds past kInf
  EXPECT_EQ(checked_round_up(INT64_MAX - 1, 2), kInf);
}

TEST(Closure, NoOpEverReturnsPastTheSentinel) {
  constexpr Duration probes[] = {INT64_MIN,     INT64_MIN + 1, -kInf,
                                 -1,            0,             1,
                                 kInf - 1,      kInf,          kInf + 1,
                                 INT64_MAX - 1, INT64_MAX};
  for (const Duration a : probes) {
    for (const Duration b : probes) {
      EXPECT_LE(sat_add(a, b), kInf);
      EXPECT_LE(sat_mul(a, b), kInf);
      if (b > 0) {
        EXPECT_LE(sat_ceil_div_mul(a, b, a), kInf);
        EXPECT_LE(checked_round_up(a, b), kInf);
        if (a >= 0) {
          EXPECT_LE(sat_sporadic_term(b, b, a), kInf);
        }
      }
    }
  }
}

TEST(Closure, SentinelIsAFixedPoint) {
  EXPECT_EQ(sat_add(kInf, kInf), kInf);
  EXPECT_EQ(sat_mul(kInf, kInf), kInf);
  EXPECT_EQ(sat_ceil_div_mul(kInf, 3, 7), kInf);
  EXPECT_EQ(sat_sporadic_term(kInf, 3, 7), kInf);
  EXPECT_EQ(checked_round_up(kInf, 3), kInf);
}

TEST(Closure, OpsAreConstexpr) {
  static_assert(sat_add(2, 3) == 5);
  static_assert(sat_mul(kInf, 2) == kInf);
  static_assert(sat_ceil_div_mul(10, 3, 5) == 20);
  static_assert(sat_sporadic_term(10, 4, 3) == 9);
  static_assert(checked_round_up(7, 5) == 10);
  SUCCEED();
}

// --- Clamp-form equivalence proofs (base/checked.h, SoA kernels) -----------
//
// The branch-free clamp ops must equal their branching twins on the
// stated domains — the SoA kernels' bit-identity contract rests on it.
// Each proof runs the full boundary grid (every probe pair) plus a
// deterministic randomized sweep over the whole int64 range.

constexpr Duration kProbes[] = {INT64_MIN,     INT64_MIN + 1, -kInf,
                                -1,            0,             1,
                                kInf - 1,      kInf,          kInf + 1,
                                INT64_MAX - 1, INT64_MAX};

/// Deterministic 64-bit generator for the randomized sweeps (splitmix64).
constexpr std::uint64_t next_u64(std::uint64_t& state) {
  state += 0x9e3779b97f4a7c15ull;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

TEST(ClampAdd, EqualsSatAddOnTheBoundaryGrid) {
  for (const Duration a : kProbes)
    for (const Duration b : kProbes)
      EXPECT_EQ(clamp_add(a, b), sat_add(a, b)) << "a=" << a << " b=" << b;
}

TEST(ClampAdd, EqualsSatAddOnARandomizedSweep) {
  std::uint64_t state = 0xC1A3;
  for (int i = 0; i < 200'000; ++i) {
    const auto a = static_cast<Duration>(next_u64(state));
    const auto b = static_cast<Duration>(next_u64(state));
    ASSERT_EQ(clamp_add(a, b), sat_add(a, b)) << "a=" << a << " b=" << b;
  }
}

TEST(ClampMulThreshold, IsTheExactSaturationBoundaryOfTheProduct) {
  // count * cost >= kInf  iff  count >= clamp_mul_threshold(cost), for
  // count >= 0 — including both degenerate costs.
  EXPECT_EQ(clamp_mul_threshold(kInf), 0);      // every count saturates
  EXPECT_EQ(clamp_mul_threshold(kInf + 1), 0);
  EXPECT_EQ(clamp_mul_threshold(0), kInf);      // no finite count does
  EXPECT_EQ(clamp_mul_threshold(1), kInf);
  for (const Duration cost : {Duration{2}, Duration{3}, Duration{977},
                              Duration{1} << 40, kInf - 1}) {
    const Duration thr = clamp_mul_threshold(cost);
    // At the threshold the product saturates; one below it does not —
    // verified in __int128 so the check itself cannot wrap.
    EXPECT_GE(static_cast<__int128>(thr) * cost, static_cast<__int128>(kInf))
        << "cost=" << cost;
    EXPECT_LT(static_cast<__int128>(thr - 1) * cost,
              static_cast<__int128>(kInf))
        << "cost=" << cost;
  }
}

TEST(ClampSporadicTerm, EqualsSatSporadicTermOnTheBoundaryGrid) {
  for (const Duration a : kProbes)
    for (const Duration T : {Duration{1}, Duration{2}, Duration{3},
                             Duration{1} << 40, kInf - 1})
      for (const Duration cost : {Duration{0}, Duration{1}, Duration{3},
                                  Duration{1} << 40, kInf - 1, kInf}) {
        const Duration thr = clamp_mul_threshold(cost);
        EXPECT_EQ(clamp_sporadic_term(a, T, cost, thr),
                  sat_sporadic_term(a, T, cost))
            << "a=" << a << " T=" << T << " c=" << cost;
      }
}

TEST(ClampSporadicTerm, EqualsSatSporadicTermOnARandomizedSweep) {
  std::uint64_t state = 0x50AD1C;
  for (int i = 0; i < 200'000; ++i) {
    const auto a = static_cast<Duration>(next_u64(state));
    const Duration T = 1 + static_cast<Duration>(next_u64(state) &
                                                 ((std::uint64_t{1} << 62) - 1));
    const Duration cost = static_cast<Duration>(next_u64(state) %
                                                (static_cast<std::uint64_t>(kInf) + 1));
    const Duration thr = clamp_mul_threshold(cost);
    ASSERT_EQ(clamp_sporadic_term(a, T, cost, thr),
              sat_sporadic_term(a, T, cost))
        << "a=" << a << " T=" << T << " c=" << cost;
  }
}

TEST(ClampCeilTerm, EqualsSatCeilDivMulOnTheNonnegativeGrid) {
  for (const Duration b : kProbes) {
    if (b < 0) continue;  // domain: busy-period iterates are nonnegative
    for (const Duration T : {Duration{1}, Duration{2}, Duration{3},
                             Duration{1} << 40, kInf - 1})
      for (const Duration cost : {Duration{0}, Duration{1}, Duration{3},
                                  Duration{1} << 40, kInf - 1, kInf}) {
        const Duration thr = clamp_mul_threshold(cost);
        EXPECT_EQ(clamp_ceil_term(b, T, cost, thr),
                  sat_ceil_div_mul(b, T, cost))
            << "b=" << b << " T=" << T << " c=" << cost;
      }
  }
}

TEST(ClampCeilTerm, EqualsSatCeilDivMulOnARandomizedSweep) {
  std::uint64_t state = 0xCE11;
  for (int i = 0; i < 200'000; ++i) {
    const auto b = static_cast<Duration>(next_u64(state) >> 1);  // b >= 0
    const Duration T = 1 + static_cast<Duration>(next_u64(state) &
                                                 ((std::uint64_t{1} << 62) - 1));
    const Duration cost = static_cast<Duration>(next_u64(state) %
                                                (static_cast<std::uint64_t>(kInf) + 1));
    const Duration thr = clamp_mul_threshold(cost);
    ASSERT_EQ(clamp_ceil_term(b, T, cost, thr), sat_ceil_div_mul(b, T, cost))
        << "b=" << b << " T=" << T << " c=" << cost;
  }
}

TEST(Closure, ClampOpsAreConstexpr) {
  static_assert(clamp_add(2, 3) == 5);
  static_assert(clamp_add(kInf - 1, 1) == kInf);
  static_assert(clamp_mul_threshold(1) == kInf);
  static_assert(clamp_sporadic_term(10, 4, 3, clamp_mul_threshold(3)) == 9);
  static_assert(clamp_ceil_term(10, 3, 5, clamp_mul_threshold(5)) == 20);
  SUCCEED();
}

// --- Checked instants (candidate-step enumeration) -------------------------

TEST(CheckedStepInstant, ExactAtTheInt64Boundary) {
  // k * T - offset must be computed exactly up to the representable edge
  // and report wrap — not a clamped value — one past it.  A wrapped step
  // used to cycle the candidate generator through ~2^64/T garbage
  // instants; the checked form turns it into a divergence verdict.
  Time t = 0;
  EXPECT_TRUE(checked_step_instant(INT64_MAX, 1, 0, &t));
  EXPECT_EQ(t, INT64_MAX);
  EXPECT_TRUE(checked_step_instant(INT64_MAX / 2, 2, -1, &t));
  EXPECT_EQ(t, INT64_MAX);
  EXPECT_TRUE(checked_step_instant(0, 1, INT64_MAX, &t));
  EXPECT_EQ(t, -INT64_MAX);
  EXPECT_TRUE(checked_step_instant(INT64_MIN / 2, 2, 0, &t));
  EXPECT_EQ(t, INT64_MIN);

  // One past the edge, in every direction: product wrap, positive
  // subtraction wrap, negative subtraction wrap.
  EXPECT_FALSE(checked_step_instant(INT64_MAX / 2 + 1, 2, 0, &t));
  EXPECT_FALSE(checked_step_instant(INT64_MAX, 2, 0, &t));
  EXPECT_FALSE(checked_step_instant(INT64_MAX, 1, -1, &t));
  EXPECT_FALSE(checked_step_instant(INT64_MIN / 2, 2, 1, &t));
  EXPECT_FALSE(checked_step_instant(-2, INT64_MAX, 0, &t));
}

TEST(CheckedAddTime, ReportsWrapInsteadOfClamping) {
  Time t = 0;
  EXPECT_TRUE(checked_add_time(INT64_MAX - 1, 1, &t));
  EXPECT_EQ(t, INT64_MAX);
  EXPECT_TRUE(checked_add_time(INT64_MIN + 1, -1, &t));
  EXPECT_EQ(t, INT64_MIN);
  EXPECT_FALSE(checked_add_time(INT64_MAX, 1, &t));
  EXPECT_FALSE(checked_add_time(INT64_MIN, -1, &t));
}

TEST(IsInfinite, ClassifiesSentinelAndNegativeWraps) {
  EXPECT_TRUE(is_infinite(kInf));
  EXPECT_TRUE(is_infinite(kInf + 1));
  EXPECT_TRUE(is_infinite(INT64_MAX));
  EXPECT_FALSE(is_infinite(kInf - 1));
  EXPECT_FALSE(is_infinite(0));
  // A negative *duration* can only come from wrapped arithmetic upstream
  // — classified as infinite so it can never read as schedulable.
  EXPECT_TRUE(is_infinite(-1));
  EXPECT_TRUE(is_infinite(INT64_MIN));
}

}  // namespace
}  // namespace tfa
