// Exact-boundary coverage of the saturating checked ops (base/checked.h):
// every op at INT64_MAX / INT64_MIN / kInfiniteDuration +- 1, the closure
// property (no op ever returns past kInfiniteDuration, and the sentinel
// is absorbing), and the deliberate upward saturation of negative
// overflow — a wrapped-negative window must never undercount packets.
#include "base/checked.h"

#include <gtest/gtest.h>

#include <cstdint>

#include "base/math.h"
#include "base/types.h"

namespace tfa {
namespace {

constexpr Duration kInf = kInfiniteDuration;

TEST(SatAdd, PlainSumsAreExact) {
  EXPECT_EQ(sat_add(0, 0), 0);
  EXPECT_EQ(sat_add(3, 4), 7);
  EXPECT_EQ(sat_add(-5, 2), -3);
  EXPECT_EQ(sat_add(kInf - 2, 1), kInf - 1);
}

TEST(SatAdd, SaturatesAtTheSentinel) {
  EXPECT_EQ(sat_add(kInf - 1, 1), kInf);
  EXPECT_EQ(sat_add(kInf, 0), kInf);
  EXPECT_EQ(sat_add(kInf, -1), kInf);  // absorbing, even minus something
  EXPECT_EQ(sat_add(kInf + 1, 0), kInf);
  EXPECT_EQ(sat_add(INT64_MAX, 0), kInf);
}

TEST(SatAdd, SaturatesOnInt64Overflow) {
  EXPECT_EQ(sat_add(INT64_MAX, 1), kInf);
  EXPECT_EQ(sat_add(INT64_MAX, INT64_MAX), kInf);
  EXPECT_EQ(sat_add(INT64_MAX - 1, 2), kInf);
}

TEST(SatAdd, NegativeOverflowSaturatesUpward) {
  // INT64_MIN + -1 wraps positive in plain arithmetic; the sound report
  // for a window that left int64 is "unbounded", never a finite value.
  EXPECT_EQ(sat_add(INT64_MIN, -1), kInf);
  EXPECT_EQ(sat_add(INT64_MIN, INT64_MIN), kInf);
  EXPECT_EQ(sat_add(INT64_MIN, 0), INT64_MIN);  // exact: no overflow
  EXPECT_EQ(sat_add(INT64_MIN + 1, -1), INT64_MIN);
}

TEST(SatMul, PlainProductsAreExact) {
  EXPECT_EQ(sat_mul(0, kInf - 1), 0);
  EXPECT_EQ(sat_mul(6, 7), 42);
  EXPECT_EQ(sat_mul(-3, 4), -12);
  EXPECT_EQ(sat_mul(1, kInf - 1), kInf - 1);
}

TEST(SatMul, SaturatesAtTheSentinel) {
  EXPECT_EQ(sat_mul(kInf, 1), kInf);
  EXPECT_EQ(sat_mul(kInf, 0), kInf);  // absorbing by contract
  EXPECT_EQ(sat_mul(kInf + 1, 1), kInf);
  EXPECT_EQ(sat_mul(INT64_MAX, 1), kInf);
  EXPECT_EQ(sat_mul((kInf / 2) + 1, 2), kInf);
}

TEST(SatMul, SaturatesOnInt64Overflow) {
  EXPECT_EQ(sat_mul(INT64_MAX / 2 + 1, 2), kInf);
  EXPECT_EQ(sat_mul(Duration{1} << 32, Duration{1} << 32), kInf);
  EXPECT_EQ(sat_mul(INT64_MIN, -1), kInf);  // the classic wrap case
  EXPECT_EQ(sat_mul(INT64_MIN, 2), kInf);   // negative overflow, upward
}

TEST(SatCeilDivMul, MatchesPlainArithmeticWhenSafe) {
  EXPECT_EQ(sat_ceil_div_mul(10, 3, 5), ceil_div(10, 3) * 5);
  EXPECT_EQ(sat_ceil_div_mul(0, 7, 9), 0);
  EXPECT_EQ(sat_ceil_div_mul(-10, 3, 5), ceil_div(-10, 3) * 5);
}

TEST(SatCeilDivMul, SaturatesOnInfiniteWindowOrHugeProduct) {
  EXPECT_EQ(sat_ceil_div_mul(kInf, 1, 1), kInf);
  EXPECT_EQ(sat_ceil_div_mul(kInf + 1, 1, 1), kInf);
  EXPECT_EQ(sat_ceil_div_mul(kInf - 1, 1, 2), kInf);
  EXPECT_EQ(sat_ceil_div_mul(kInf - 1, 2, Duration{1} << 40), kInf);
}

TEST(SatSporadicTerm, MatchesPlainArithmeticWhenSafe) {
  EXPECT_EQ(sat_sporadic_term(10, 4, 3), sporadic_count(10, 4) * 3);
  EXPECT_EQ(sat_sporadic_term(-1, 4, 3), 0);  // negative window: 0 packets
  EXPECT_EQ(sat_sporadic_term(0, 4, 3), 3);   // one packet at the edge
}

TEST(SatSporadicTerm, SaturatesOnInfiniteWindowOrHugeProduct) {
  EXPECT_EQ(sat_sporadic_term(kInf, 1, 1), kInf);
  EXPECT_EQ(sat_sporadic_term(kInf + 1, 1, 0), kInf);
  EXPECT_EQ(sat_sporadic_term(kInf - 1, 1, 2), kInf);
  EXPECT_EQ(sat_sporadic_term(kInf - 1, 2, Duration{1} << 40), kInf);
}

TEST(CheckedRoundUp, MatchesRoundUpWhenSafe) {
  EXPECT_EQ(checked_round_up(0, 5), round_up(0, 5));
  EXPECT_EQ(checked_round_up(7, 5), round_up(7, 5));
  EXPECT_EQ(checked_round_up(10, 5), round_up(10, 5));
}

TEST(CheckedRoundUp, SaturatesNearTheEdge) {
  EXPECT_EQ(checked_round_up(kInf, 4096), kInf);
  EXPECT_EQ(checked_round_up(kInf + 1, 4096), kInf);
  EXPECT_EQ(checked_round_up(kInf - 1, 4096), kInf);  // rounds past kInf
  EXPECT_EQ(checked_round_up(INT64_MAX - 1, 2), kInf);
}

TEST(Closure, NoOpEverReturnsPastTheSentinel) {
  constexpr Duration probes[] = {INT64_MIN,     INT64_MIN + 1, -kInf,
                                 -1,            0,             1,
                                 kInf - 1,      kInf,          kInf + 1,
                                 INT64_MAX - 1, INT64_MAX};
  for (const Duration a : probes) {
    for (const Duration b : probes) {
      EXPECT_LE(sat_add(a, b), kInf);
      EXPECT_LE(sat_mul(a, b), kInf);
      if (b > 0) {
        EXPECT_LE(sat_ceil_div_mul(a, b, a), kInf);
        EXPECT_LE(checked_round_up(a, b), kInf);
        if (a >= 0) {
          EXPECT_LE(sat_sporadic_term(b, b, a), kInf);
        }
      }
    }
  }
}

TEST(Closure, SentinelIsAFixedPoint) {
  EXPECT_EQ(sat_add(kInf, kInf), kInf);
  EXPECT_EQ(sat_mul(kInf, kInf), kInf);
  EXPECT_EQ(sat_ceil_div_mul(kInf, 3, 7), kInf);
  EXPECT_EQ(sat_sporadic_term(kInf, 3, 7), kInf);
  EXPECT_EQ(checked_round_up(kInf, 3), kInf);
}

TEST(Closure, OpsAreConstexpr) {
  static_assert(sat_add(2, 3) == 5);
  static_assert(sat_mul(kInf, 2) == kInf);
  static_assert(sat_ceil_div_mul(10, 3, 5) == 20);
  static_assert(sat_sporadic_term(10, 4, 3) == 9);
  static_assert(checked_round_up(7, 5) == 10);
  SUCCEED();
}

TEST(IsInfinite, ClassifiesSentinelAndNegativeWraps) {
  EXPECT_TRUE(is_infinite(kInf));
  EXPECT_TRUE(is_infinite(kInf + 1));
  EXPECT_TRUE(is_infinite(INT64_MAX));
  EXPECT_FALSE(is_infinite(kInf - 1));
  EXPECT_FALSE(is_infinite(0));
  // A negative *duration* can only come from wrapped arithmetic upstream
  // — classified as infinite so it can never read as schedulable.
  EXPECT_TRUE(is_infinite(-1));
  EXPECT_TRUE(is_infinite(INT64_MIN));
}

}  // namespace
}  // namespace tfa
