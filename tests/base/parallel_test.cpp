// Tests of the parallel sweep helper.
#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <vector>

#include "base/parallel.h"

namespace tfa {
namespace {

TEST(ParallelFor, VisitsEveryIndexExactlyOnce) {
  constexpr std::size_t kCount = 10000;
  std::vector<std::atomic<int>> hits(kCount);
  parallel_for(kCount, [&](std::size_t i) { hits[i].fetch_add(1); });
  for (std::size_t i = 0; i < kCount; ++i) EXPECT_EQ(hits[i].load(), 1);
}

TEST(ParallelFor, ZeroCountIsNoOp) {
  bool touched = false;
  parallel_for(0, [&](std::size_t) { touched = true; });
  EXPECT_FALSE(touched);
}

TEST(ParallelFor, SingleWorkerIsSequential) {
  std::vector<std::size_t> order;
  parallel_for(64, [&](std::size_t i) { order.push_back(i); },
               /*workers=*/1);
  ASSERT_EQ(order.size(), 64u);
  for (std::size_t i = 0; i < order.size(); ++i) EXPECT_EQ(order[i], i);
}

TEST(ParallelFor, SumMatchesSequentialReference) {
  constexpr std::size_t kCount = 5000;
  std::atomic<std::int64_t> sum{0};
  parallel_for(kCount, [&](std::size_t i) {
    sum.fetch_add(static_cast<std::int64_t>(i));
  });
  EXPECT_EQ(sum.load(),
            static_cast<std::int64_t>(kCount) * (kCount - 1) / 2);
}

TEST(ParallelShards, CoversEveryIndexOnceWithContiguousRanges) {
  constexpr std::size_t kCount = 1003;
  std::vector<std::atomic<int>> hits(kCount);
  parallel_shards(kCount, 7, [&](std::size_t, std::size_t begin,
                                 std::size_t end) {
    EXPECT_LT(begin, end);
    for (std::size_t i = begin; i < end; ++i) hits[i].fetch_add(1);
  });
  for (std::size_t i = 0; i < kCount; ++i) EXPECT_EQ(hits[i].load(), 1);
}

TEST(ParallelShards, LayoutIndependentOfWorkerCount) {
  // The (shard -> range) map must be a pure function of (count, shards):
  // record it at workers=1 and at workers=4 and compare.
  auto layout = [](std::size_t workers) {
    std::vector<std::pair<std::size_t, std::size_t>> ranges(5);
    parallel_shards(
        42, 5,
        [&](std::size_t s, std::size_t b, std::size_t e) {
          ranges[s] = {b, e};
        },
        workers);
    return ranges;
  };
  EXPECT_EQ(layout(1), layout(4));
}

TEST(ParallelShards, MoreShardsThanIndicesClamps) {
  std::atomic<int> calls{0};
  parallel_shards(3, 16, [&](std::size_t, std::size_t begin,
                             std::size_t end) {
    calls.fetch_add(1);
    EXPECT_EQ(end, begin + 1);
  });
  EXPECT_EQ(calls.load(), 3);
}

TEST(DefaultWorkerCount, AtLeastOne) {
  EXPECT_GE(default_worker_count(), 1u);
}

}  // namespace
}  // namespace tfa
