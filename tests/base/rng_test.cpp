// Tests of the deterministic PRNG used by generators and the simulator.
#include <gtest/gtest.h>

#include <array>

#include "base/rng.h"

namespace tfa {
namespace {

TEST(Rng, SameSeedSameStream) {
  Rng a(42), b(42);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i)
    if (a.next() == b.next()) ++equal;
  EXPECT_LT(equal, 2);
}

TEST(Rng, UniformStaysInClosedRange) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const auto v = rng.uniform(-5, 17);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 17);
  }
}

TEST(Rng, UniformSingletonRange) {
  Rng rng(9);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(rng.uniform(3, 3), 3);
}

TEST(Rng, UniformCoversEveryValue) {
  Rng rng(11);
  std::array<int, 6> hits{};
  for (int i = 0; i < 6000; ++i)
    ++hits[static_cast<std::size_t>(rng.uniform(0, 5))];
  for (const int h : hits) {
    EXPECT_GT(h, 700);   // roughly uniform: expectation 1000
    EXPECT_LT(h, 1300);
  }
}

TEST(Rng, Uniform01InHalfOpenUnitInterval) {
  Rng rng(13);
  for (int i = 0; i < 10000; ++i) {
    const double v = rng.uniform01();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(RngStream, SameKeySameStream) {
  Rng a = Rng::stream(99, 5);
  Rng b = Rng::stream(99, 5);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(RngStream, AdjacentIndicesDecorrelated) {
  Rng a = Rng::stream(99, 5);
  Rng b = Rng::stream(99, 6);
  int equal = 0;
  for (int i = 0; i < 64; ++i)
    if (a.next() == b.next()) ++equal;
  EXPECT_LT(equal, 2);
}

TEST(RngStream, DistinctSeedsGiveDistinctKeys) {
  EXPECT_NE(Rng::stream_key(1, 0), Rng::stream_key(2, 0));
  EXPECT_NE(Rng::stream_key(1, 0), Rng::stream_key(1, 1));
}

TEST(Rng, ChanceExtremes) {
  Rng rng(17);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.chance(0.0));
    EXPECT_TRUE(rng.chance(1.0));
  }
}

}  // namespace
}  // namespace tfa
