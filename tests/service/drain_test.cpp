// Graceful drain: `shutdown` finishes in-flight work (the open analyze
// batch) before answering, later requests are refused with `draining`,
// and the stream transport exits cleanly with or without a shutdown.
#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "base/json.h"
#include "service/serve.h"
#include "service/service.h"
#include "service_test_util.h"

namespace tfa::service {
namespace {

TEST(Drain, ShutdownFlushesQueuedAnalyzesFirst) {
  Service svc(test_config());
  svc.submit(load_line("p", paper_text()));
  svc.submit(analyze_line("p"));
  svc.submit(analyze_line("p"));
  svc.submit(R"({"op":"shutdown"})");
  EXPECT_TRUE(svc.draining());

  // load, two analyzes (served, not refused), then the shutdown ack.
  for (const std::uint64_t seq : {1u, 2u, 3u, 4u}) {
    const auto r = svc.next_response();
    ASSERT_TRUE(r.has_value()) << "missing response " << seq;
    EXPECT_NE(r->find("\"seq\":" + std::to_string(seq) + ","),
              std::string::npos)
        << *r;
    EXPECT_NE(r->find("\"ok\":true"), std::string::npos) << *r;
  }
  EXPECT_FALSE(svc.next_response().has_value());
}

TEST(Drain, EverythingAfterShutdownIsRefused) {
  Service svc(test_config());
  svc.submit(load_line("p", paper_text()));
  svc.submit(R"({"op":"shutdown"})");
  // Valid, malformed and mis-addressed requests alike: all draining.
  svc.submit(analyze_line("p"));
  svc.submit("garbage");
  svc.submit(R"({"op":"metrics","id":9})");
  svc.flush();
  (void)svc.next_response();  // load ack
  (void)svc.next_response();  // shutdown ack
  for (int i = 0; i < 3; ++i) {
    const auto r = svc.next_response();
    ASSERT_TRUE(r.has_value());
    EXPECT_NE(r->find("\"code\":\"draining\""), std::string::npos) << *r;
  }
  // The id of a refused request is still echoed.
  svc.submit(R"({"op":"flush","id":"bye"})");
  const auto last = svc.next_response();
  ASSERT_TRUE(last.has_value());
  EXPECT_NE(last->find("\"id\":\"bye\""), std::string::npos) << *last;
}

TEST(Drain, ServeStreamReportsShutdown) {
  std::istringstream in(load_line("p", paper_text()) + "\n" +
                        analyze_line("p") + "\n" +
                        R"({"op":"shutdown"})" + "\n" + analyze_line("p") +
                        "\n");
  std::ostringstream out;
  Service svc(test_config());
  const ServeResult r = serve_stream(in, out, svc);
  EXPECT_TRUE(r.shutdown);
  EXPECT_EQ(r.requests, 4u);
  // One response line per request, last one refused.
  std::istringstream responses(out.str());
  std::string line;
  int count = 0;
  std::string last;
  while (std::getline(responses, line)) {
    ++count;
    last = line;
  }
  EXPECT_EQ(count, 4);
  EXPECT_NE(last.find("\"code\":\"draining\""), std::string::npos) << last;
}

TEST(Drain, EofWithoutShutdownDrainsToo) {
  std::istringstream in(load_line("p", paper_text()) + "\n" +
                        analyze_line("p") + "\n");
  std::ostringstream out;
  Service svc(test_config());
  const ServeResult r = serve_stream(in, out, svc);
  EXPECT_FALSE(r.shutdown);
  EXPECT_EQ(r.requests, 2u);
  EXPECT_NE(out.str().find("\"all_schedulable\""), std::string::npos);
}

}  // namespace
}  // namespace tfa::service
