// Socket-transport contract: a connection's response bytes are exactly
// what the same request lines produce over the in-process loopback and
// over serve_stream, for every worker count and with other connections
// interleaving arbitrarily — plus the transport-specific behaviours
// (shed envelope past --max-conns, deadline_exceeded under transport
// queueing, half-close framing, mid-stream oversized recovery) and the
// bounded-line fix in serve_stream itself.
//
// Every reference transcript here runs with a null Telemetry: latency
// then never reaches the wire, so response bytes are clock-independent
// and the socket side (which stamps arrivals with the real steady
// clock) can be compared byte for byte.
#include <gtest/gtest.h>
#include <unistd.h>

#include <cstdio>
#include <sstream>
#include <string>
#include <vector>

#include "base/net.h"
#include "model/serialize.h"
#include "service/loopback.h"
#include "service/serve.h"
#include "service/socket_transport.h"
#include "service_test_util.h"

namespace tfa::service {
namespace {

/// A mixed single-session script (no `metrics`: its session list shows
/// the whole shared store, which a multi-connection run populates
/// differently than a solo one).
std::vector<std::string> session_script(const std::string& session) {
  std::vector<std::string> s;
  s.push_back(load_line(session, paper_text()));
  s.push_back(analyze_line(session));
  s.push_back(analyze_line(session));  // memo hit
  s.push_back(analyze_line(session, true));
  s.push_back("{\"op\":\"add_flow\",\"session\":" + json_string(session) +
              R"(,"flow":"flow tau6 EF 72 0 70 path 1 3 4 costs 2"})");
  s.push_back(analyze_line(session));
  s.push_back("{\"op\":\"remove_flow\",\"session\":" + json_string(session) +
              R"(,"name":"tau6"})");
  s.push_back(analyze_line(session));
  s.push_back("{\"op\":\"snapshot\",\"session\":" + json_string(session) +
              "}");
  s.push_back(R"({"op":"flush"})");
  return s;
}

/// The full golden script: one session plus the service-wide ops.
std::vector<std::string> golden_script() {
  std::vector<std::string> s = session_script("paper");
  s.push_back(R"({"op":"metrics"})");
  s.push_back(R"({"op":"shutdown"})");
  return s;
}

/// Reference bytes: the script through a private Loopback.  No
/// telemetry, default clock — see the file comment.
std::string loopback_transcript(const std::vector<std::string>& lines,
                                std::size_t workers) {
  ServiceConfig cfg;
  cfg.workers = workers;
  Loopback lb(std::move(cfg));
  std::string out;
  for (const std::string& r : lb.roundtrip(lines)) {
    out += r;
    out += '\n';
  }
  return out;
}

std::string serve_transcript(const std::vector<std::string>& lines,
                             std::size_t workers) {
  std::string input;
  for (const std::string& l : lines) {
    input += l;
    input += '\n';
  }
  std::istringstream in(input);
  std::ostringstream out;
  ServiceConfig cfg;
  cfg.workers = workers;
  Service svc(std::move(cfg));
  serve_stream(in, out, svc);
  return out.str();
}

/// The script over a live TCP connection: send everything, read one
/// response per line.
std::string socket_transcript(net::LineClient& client,
                              const std::vector<std::string>& lines) {
  std::string out;
  for (const std::string& l : lines) EXPECT_TRUE(client.send_line(l));
  for (std::size_t i = 0; i < lines.size(); ++i) {
    const auto r = client.read_line();
    if (!r.has_value()) {
      ADD_FAILURE() << "connection dropped after " << i << " responses";
      break;
    }
    out += *r;
    out += '\n';
  }
  return out;
}

SocketServerConfig tcp_config(std::size_t workers,
                              std::size_t executors = 2) {
  SocketServerConfig cfg;
  cfg.executors = executors;
  cfg.service.workers = workers;
  return cfg;
}

TEST(SocketTransport, TcpMatchesLoopbackAndStdioForEveryWorkerCount) {
  const std::vector<std::string> lines = golden_script();
  for (const std::size_t workers : {std::size_t{1}, std::size_t{2},
                                    std::size_t{8}}) {
    const std::string expected = loopback_transcript(lines, workers);
    ASSERT_FALSE(expected.empty());
    EXPECT_EQ(serve_transcript(lines, workers), expected)
        << "stdio diverged at workers=" << workers;

    SocketServer server(tcp_config(workers));
    std::string error;
    ASSERT_TRUE(server.start(&error)) << error;
    net::LineClient client(net::connect_tcp(server.port(), &error));
    ASSERT_TRUE(client.connected()) << error;
    EXPECT_EQ(socket_transcript(client, lines), expected)
        << "socket diverged at workers=" << workers;
    // The script ends in `shutdown`: the server drains itself.
    server.wait();
    EXPECT_FALSE(server.running());
    server.stop();
  }
}

TEST(SocketTransport, InterleavedConnectionsKeepSoloTranscripts) {
  const std::vector<std::string> a_lines = session_script("a");
  const std::vector<std::string> b_lines = session_script("b");
  const std::string a_expected = loopback_transcript(a_lines, 1);
  const std::string b_expected = loopback_transcript(b_lines, 1);

  SocketServer server(tcp_config(/*workers=*/1, /*executors=*/2));
  std::string error;
  ASSERT_TRUE(server.start(&error)) << error;
  net::LineClient a(net::connect_tcp(server.port(), &error));
  net::LineClient b(net::connect_tcp(server.port(), &error));
  ASSERT_TRUE(a.connected() && b.connected()) << error;

  // Closed-loop, strictly alternating: every request of one connection
  // lands between two requests of the other, so the shared store sees
  // maximal interleaving while each connection's Service sees its own
  // clean sequence.
  ASSERT_EQ(a_lines.size(), b_lines.size());
  std::string a_out;
  std::string b_out;
  for (std::size_t i = 0; i < a_lines.size(); ++i) {
    ASSERT_TRUE(a.send_line(a_lines[i]));
    ASSERT_TRUE(b.send_line(b_lines[i]));
    const auto ra = a.read_line();
    const auto rb = b.read_line();
    ASSERT_TRUE(ra.has_value() && rb.has_value());
    a_out += *ra;
    a_out += '\n';
    b_out += *rb;
    b_out += '\n';
  }
  EXPECT_EQ(a_out, a_expected);
  EXPECT_EQ(b_out, b_expected);
  server.stop();
}

TEST(SocketTransport, UnixSocketMatchesLoopback) {
  const std::string path =
      testing::TempDir() + "tfa_socket_test_" +
      std::to_string(::getpid()) + ".sock";
  const std::vector<std::string> lines = golden_script();
  const std::string expected = loopback_transcript(lines, 2);

  SocketServerConfig cfg = tcp_config(/*workers=*/2);
  cfg.unix_path = path;
  SocketServer server(std::move(cfg));
  std::string error;
  ASSERT_TRUE(server.start(&error)) << error;
  EXPECT_EQ(server.path(), path);
  net::LineClient client(net::connect_unix(path, &error));
  ASSERT_TRUE(client.connected()) << error;
  EXPECT_EQ(socket_transcript(client, lines), expected);
  server.wait();
  server.stop();
  std::remove(path.c_str());
}

TEST(SocketTransport, ConnectionsPastMaxConnsAreShedWithAnEnvelope) {
  SocketServerConfig cfg = tcp_config(/*workers=*/1);
  cfg.max_conns = 1;
  SocketServer server(std::move(cfg));
  std::string error;
  ASSERT_TRUE(server.start(&error)) << error;

  net::LineClient first(net::connect_tcp(server.port(), &error));
  ASSERT_TRUE(first.connected()) << error;
  ASSERT_TRUE(first.send_line(R"({"op":"metrics"})"));
  auto r = first.read_line();
  ASSERT_TRUE(r.has_value());
  EXPECT_NE(r->find("\"ok\":true"), std::string::npos) << *r;

  net::LineClient second(net::connect_tcp(server.port(), &error));
  ASSERT_TRUE(second.connected()) << error;
  const auto shed = second.read_line();
  ASSERT_TRUE(shed.has_value());
  EXPECT_EQ(*shed,
            R"({"seq":0,"ok":false,"op":null,"error":{"code":"shed",)"
            R"("message":"connection limit reached, retry later"}})");
  EXPECT_FALSE(second.read_line().has_value());  // closed after the envelope

  // The admitted connection is unaffected.
  ASSERT_TRUE(first.send_line(R"({"op":"flush"})"));
  r = first.read_line();
  ASSERT_TRUE(r.has_value());
  EXPECT_NE(r->find("\"ok\":true"), std::string::npos) << *r;
  EXPECT_EQ(server.connections_shed(), 1u);
  server.stop();
}

TEST(SocketTransport, TransportQueueingCountsAgainstDeadlines) {
  SocketServer server(tcp_config(/*workers=*/1));
  std::string error;
  ASSERT_TRUE(server.start(&error)) << error;
  net::LineClient client(net::connect_tcp(server.port(), &error));
  ASSERT_TRUE(client.connected()) << error;

  ASSERT_TRUE(client.send_line(load_line("p", paper_text())));
  ASSERT_TRUE(client.read_line().has_value());
  // A zero deadline has always expired by the time the executor picks
  // the line up: the arrival stamp is strictly older than the check.
  for (const char* line :
       {R"({"op":"analyze","session":"p","deadline_ms":0})",
        R"({"op":"snapshot","session":"p","deadline_ms":0})"}) {
    ASSERT_TRUE(client.send_line(line));
    const auto r = client.read_line();
    ASSERT_TRUE(r.has_value());
    EXPECT_NE(r->find("\"code\":\"deadline_exceeded\""), std::string::npos)
        << *r;
  }
  // Without a deadline the same request succeeds.
  ASSERT_TRUE(client.send_line(R"({"op":"analyze","session":"p"})"));
  const auto ok = client.read_line();
  ASSERT_TRUE(ok.has_value());
  EXPECT_NE(ok->find("\"ok\":true"), std::string::npos) << *ok;
  server.stop();
}

TEST(SocketTransport, HalfCloseDeliversTheFinalUnterminatedLine) {
  SocketServer server(tcp_config(/*workers=*/1));
  std::string error;
  ASSERT_TRUE(server.start(&error)) << error;
  net::LineClient client(net::connect_tcp(server.port(), &error));
  ASSERT_TRUE(client.connected()) << error;

  // Two frames split mid-line, the second never newline-terminated.
  ASSERT_TRUE(client.send_raw("{\"op\":\"flu"));
  ASSERT_TRUE(client.send_raw("sh\"}\n{\"op\":\"metrics\"}"));
  client.half_close();
  const auto flush_r = client.read_line();
  ASSERT_TRUE(flush_r.has_value());
  EXPECT_NE(flush_r->find("\"op\":\"flush\""), std::string::npos) << *flush_r;
  const auto metrics_r = client.read_line();
  ASSERT_TRUE(metrics_r.has_value());
  EXPECT_NE(metrics_r->find("\"op\":\"metrics\""), std::string::npos)
      << *metrics_r;
  EXPECT_NE(metrics_r->find("\"ok\":true"), std::string::npos) << *metrics_r;
  EXPECT_FALSE(client.read_line().has_value());  // server closes after EOF
  server.stop();
}

TEST(SocketTransport, MidStreamOversizedLineGetsAnEnvelopeAndFramingHolds) {
  SocketServerConfig cfg = tcp_config(/*workers=*/1);
  cfg.service.max_request_bytes = 64;
  SocketServer server(std::move(cfg));
  std::string error;
  ASSERT_TRUE(server.start(&error)) << error;
  net::LineClient client(net::connect_tcp(server.port(), &error));
  ASSERT_TRUE(client.connected()) << error;

  const std::string huge(500, 'x');
  ASSERT_TRUE(client.send_line(huge));
  ASSERT_TRUE(client.send_line(R"({"op":"metrics"})"));
  const auto oversized = client.read_line();
  ASSERT_TRUE(oversized.has_value());
  EXPECT_NE(oversized->find("\"seq\":1"), std::string::npos) << *oversized;
  EXPECT_NE(oversized->find("\"code\":\"oversized\""), std::string::npos)
      << *oversized;
  EXPECT_NE(oversized->find("request of 500 bytes exceeds the 64-byte limit"),
            std::string::npos)
      << *oversized;
  // The stream stayed line-synchronised: the next request is normal.
  const auto metrics_r = client.read_line();
  ASSERT_TRUE(metrics_r.has_value());
  EXPECT_NE(metrics_r->find("\"seq\":2"), std::string::npos) << *metrics_r;
  EXPECT_NE(metrics_r->find("\"ok\":true"), std::string::npos) << *metrics_r;
  server.stop();
}

/// The same bounded-line guarantee on the stdio transport (the
/// serve_stream fix): an oversized line mid-stream is answered with the
/// structured envelope — byte-identical to the socket transport's — and
/// the following request parses normally.
TEST(SocketTransport, ServeStreamAnswersMidStreamOversizedLines) {
  ServiceConfig cfg;
  cfg.max_request_bytes = 64;
  Service svc(std::move(cfg));
  std::istringstream in(std::string(500, 'x') + "\n{\"op\":\"metrics\"}\n");
  std::ostringstream out;
  const ServeResult result = serve_stream(in, out, svc);
  EXPECT_EQ(result.requests, 2u);
  std::istringstream responses(out.str());
  std::string first;
  std::string second;
  ASSERT_TRUE(std::getline(responses, first));
  ASSERT_TRUE(std::getline(responses, second));
  EXPECT_NE(first.find("\"seq\":1"), std::string::npos) << first;
  EXPECT_NE(first.find("\"code\":\"oversized\""), std::string::npos) << first;
  EXPECT_NE(first.find("request of 500 bytes exceeds the 64-byte limit"),
            std::string::npos)
      << first;
  EXPECT_NE(second.find("\"seq\":2"), std::string::npos) << second;
  EXPECT_NE(second.find("\"ok\":true"), std::string::npos) << second;
}

}  // namespace
}  // namespace tfa::service
