// The malformed-request table: every bad input is answered with the
// expected structured error code — and the service keeps serving
// correctly afterwards.  No entry may crash, hang or desync it.
#include <gtest/gtest.h>

#include <string>

#include "base/json.h"
#include "service/loopback.h"
#include "service_test_util.h"

namespace tfa::service {
namespace {

std::string error_code(const std::string& response) {
  const auto doc = json_parse(response);
  if (!doc) return "<unparseable response>";
  const JsonValue* error = doc->find("error");
  if (error == nullptr) return "<no error member>";
  const JsonValue* code = error->find("code");
  return code != nullptr ? code->string : "<no code>";
}

TEST(Malformed, TableOfBadRequests) {
  const struct {
    const char* line;
    const char* code;
  } kCases[] = {
      // Broken JSON, with a byte offset in the envelope.
      {"", "parse_error"},
      {"not json", "parse_error"},
      {R"({"op":"analyze")", "parse_error"},
      {R"({"op":"analyze","session":})", "parse_error"},
      {R"({"op":"analyze","session":"s"} trailing)", "parse_error"},
      {"{\"op\":\"analyze\",\"session\":\"\x01\"}", "parse_error"},
      // Well-formed JSON, wrong shape.
      {R"([1,2,3])", "bad_request"},
      {R"("just a string")", "bad_request"},
      {R"({"session":"s"})", "bad_request"},
      {R"({"op":42})", "bad_request"},
      {R"({"op":"analyze"})", "bad_request"},          // session missing
      {R"({"op":"analyze","session":""})", "bad_request"},
      {R"({"op":"analyze","session":7})", "bad_request"},
      {R"({"op":"analyze","session":"s","smax":"sideways"})", "bad_request"},
      {R"({"op":"analyze","session":"s","ef_mode":"yes"})", "bad_request"},
      {R"({"op":"analyze","session":"s","deadline_ms":-1})", "bad_request"},
      {R"({"op":"analyze","session":"s","deadline_ms":2.5})", "bad_request"},
      {R"({"op":"analyze","session":"s","id":[1]})", "bad_request"},
      {R"({"op":"analyze","session":"s","session":"t"})", "bad_request"},
      {R"({"op":"analyze","session":"s","frobnicate":1})", "bad_request"},
      {R"({"op":"metrics","session":"s"})", "bad_request"},  // not valid here
      {R"({"op":"load_network","session":"s"})", "bad_request"},  // no text
      {R"({"op":"add_flow","session":"s","flow":"flow a EF 9 0 9 path 0 1 costs 1\nflow b EF 9 0 9 path 0 1 costs 1"})",
       "bad_request"},
      // Provision: field whitelist, capacity domain, single-line probe.
      {R"({"op":"provision"})", "bad_request"},  // session missing
      {R"({"op":"provision","session":"s","capacity":-1})", "bad_request"},
      {R"({"op":"provision","session":"s","capacity":2.5})", "bad_request"},
      {R"({"op":"provision","session":"s","capacity":"big"})", "bad_request"},
      {R"({"op":"provision","session":"s","flow":42})", "bad_request"},
      {R"({"op":"provision","session":"s","flow":"flow a EF 9 0 9 path 0 costs 1\nflow b EF 9 0 9 path 0 costs 1"})",
       "bad_request"},
      {R"({"op":"provision","session":"s","ef_mode":true})", "bad_request"},
      {R"({"op":"provision","session":"ghost"})", "unknown_session"},
      // Unknown op.
      {R"({"op":"analyse","session":"s"})", "unknown_op"},
      // Mis-addressed, structurally fine.
      {R"({"op":"analyze","session":"ghost"})", "unknown_session"},
      {R"({"op":"snapshot","session":"ghost"})", "unknown_session"},
      {R"({"op":"remove_flow","session":"ghost","name":"f"})",
       "unknown_session"},
  };

  Loopback lb(test_config());
  for (const auto& c : kCases) {
    const std::string response = lb.request(c.line);
    EXPECT_EQ(error_code(response), c.code)
        << "request: " << c.line << "\nresponse: " << response;
  }

  // After the whole table the service still works.
  const std::string ok = lb.request(load_line("p", paper_text()));
  EXPECT_NE(ok.find("\"ok\":true"), std::string::npos) << ok;
  const std::string analyzed = lb.request(analyze_line("p"));
  EXPECT_NE(analyzed.find("\"all_schedulable\":true"), std::string::npos)
      << analyzed;
}

TEST(Malformed, ParseErrorsCarryByteOffset) {
  Loopback lb(test_config());
  const std::string response = lb.request(R"({"op":"analyze",})");
  const auto doc = json_parse(response);
  ASSERT_TRUE(doc.has_value());
  const JsonValue* error = doc->find("error");
  ASSERT_NE(error, nullptr);
  EXPECT_EQ(error->find("code")->string, "parse_error");
  const JsonValue* offset = error->find("offset");
  ASSERT_NE(offset, nullptr);
  EXPECT_EQ(static_cast<std::size_t>(offset->number), 16u);
}

TEST(Malformed, BadFlowSetReportsLine) {
  Loopback lb(test_config());
  const std::string response = lb.request(
      load_line("bad", "network 3 1 1\nflow a EF nope 0 9 path 0 1 costs 1\n"));
  const auto doc = json_parse(response);
  ASSERT_TRUE(doc.has_value());
  const JsonValue* error = doc->find("error");
  ASSERT_NE(error, nullptr);
  EXPECT_EQ(error->find("code")->string, "bad_flow_set");
  ASSERT_NE(error->find("line"), nullptr);
  EXPECT_EQ(static_cast<int>(error->find("line")->number), 2);
  EXPECT_NE(error->find("message")->string.find("line 2:"), std::string::npos);
  // The failed load creates no session.
  EXPECT_EQ(error_code(lb.request(analyze_line("bad"))), "unknown_session");
}

TEST(Malformed, OversizedPayloadRejectedUnparsed) {
  ServiceConfig cfg = test_config();
  cfg.max_request_bytes = 128;
  Loopback lb(std::move(cfg));
  const std::string big(300, 'x');
  EXPECT_EQ(error_code(lb.request(big)), "oversized");
  // Within the limit, still served.
  EXPECT_EQ(error_code(lb.request(R"({"op":"flush","x":1})")), "bad_request");
}

TEST(Malformed, DuplicateSessionAndSessionLimit) {
  ServiceConfig cfg = test_config();
  cfg.max_sessions = 2;
  Loopback lb(std::move(cfg));
  const std::string text = "network 2 1 1\n";
  EXPECT_EQ(error_code(lb.request(load_line("a", text))), "<no error member>");
  EXPECT_EQ(error_code(lb.request(load_line("a", text))), "duplicate_session");
  EXPECT_EQ(error_code(lb.request(load_line("b", text))), "<no error member>");
  EXPECT_EQ(error_code(lb.request(load_line("c", text))), "too_many_sessions");
}

TEST(Malformed, FlowLevelErrors) {
  Loopback lb(test_config());
  (void)lb.request(load_line("p", paper_text()));
  // Empty network session: analyzable only once it has flows.
  (void)lb.request(load_line("empty", "network 4 1 1\n"));
  EXPECT_EQ(error_code(lb.request(analyze_line("empty"))), "empty_session");
  EXPECT_EQ(error_code(lb.request(
                R"({"op":"provision","session":"empty"})")),
            "empty_session");
  // A provision probe that fails the flow parser.
  EXPECT_EQ(
      error_code(lb.request(
          R"({"op":"provision","session":"p","flow":"flow x EF -3 0 40 path 1 3 costs 4"})")),
      "bad_flow_set");
  // Duplicate / unknown flow names.
  EXPECT_EQ(
      error_code(lb.request(
          R"({"op":"add_flow","session":"p","flow":"flow tau1 EF 36 0 40 path 1 3 costs 4"})")),
      "duplicate_flow");
  EXPECT_EQ(error_code(lb.request(
                R"({"op":"remove_flow","session":"p","name":"tau9"})")),
            "unknown_flow");
  // A flow line that fails the parser's field checks.
  EXPECT_EQ(
      error_code(lb.request(
          R"({"op":"add_flow","session":"p","flow":"flow x EF -3 0 40 path 1 3 costs 4"})")),
      "bad_flow_set");
  // A path outside the network (caught by validation inside the parser).
  EXPECT_EQ(
      error_code(lb.request(
          R"({"op":"add_flow","session":"p","flow":"flow x EF 36 0 40 path 1 99 costs 4"})")),
      "bad_flow_set");
}

TEST(Malformed, DeadlineExceededInBatch) {
  // The counter clock advances 1ms per call; a 0ms deadline therefore
  // always expires by the time the batch closes.
  Loopback lb(test_config());
  (void)lb.request(load_line("p", paper_text()));
  lb.service().submit(
      R"({"op":"analyze","session":"p","deadline_ms":0,"id":"late"})");
  lb.service().submit(analyze_line("p"));
  lb.service().flush();
  const auto first = lb.service().next_response();
  ASSERT_TRUE(first.has_value());
  EXPECT_EQ(error_code(*first), "deadline_exceeded");
  const auto second = lb.service().next_response();
  ASSERT_TRUE(second.has_value());
  EXPECT_NE(second->find("\"ok\":true"), std::string::npos) << *second;
}

}  // namespace
}  // namespace tfa::service
