// Shared helpers of the service tests: an injected counter clock (every
// call advances 1ms, making latencies — and therefore whole transcripts,
// `metrics` responses included — bit-reproducible), the paper example as
// wire text, and request-line builders.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "model/paper_example.h"
#include "model/serialize.h"
#include "service/loopback.h"
#include "service/protocol.h"

namespace tfa::service {

/// Deterministic clock: +1ms per call, starting at 1ms.
inline std::function<std::int64_t()> counter_clock() {
  auto t = std::make_shared<std::int64_t>(0);
  return [t] { return *t += 1'000'000; };
}

inline ServiceConfig test_config(std::size_t workers = 1) {
  ServiceConfig cfg;
  cfg.workers = workers;
  cfg.clock = counter_clock();
  return cfg;
}

inline std::string paper_text() {
  return model::serialize_flow_set(model::paper_example());
}

inline std::string load_line(const std::string& session,
                             const std::string& text) {
  return "{\"op\":\"load_network\",\"session\":" + json_string(session) +
         ",\"text\":" + json_string(text) + "}";
}

inline std::string analyze_line(const std::string& session,
                                bool ef_mode = false) {
  return "{\"op\":\"analyze\",\"session\":" + json_string(session) +
         (ef_mode ? ",\"ef_mode\":true}" : "}");
}

}  // namespace tfa::service
