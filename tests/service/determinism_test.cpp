// Worker-count determinism of the service: one request script, three
// worker counts, byte-identical transcripts — on the paper example and
// on a 200-flow generated set — plus transport equivalence (loopback
// vs. serve_stream) and FIFO response ordering.
#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "base/rng.h"
#include "model/generators.h"
#include "model/serialize.h"
#include "obs/telemetry.h"
#include "service/loopback.h"
#include "service/serve.h"
#include "service_test_util.h"

namespace tfa::service {
namespace {

std::string big_set_text() {
  Rng rng(0xd373);
  model::RandomConfig cfg;
  cfg.nodes = 24;
  cfg.flows = 200;
  cfg.min_path = 2;
  cfg.max_path = 3;
  cfg.max_jitter = 4;
  cfg.max_utilisation = 0.5;
  return model::serialize_flow_set(model::make_random(cfg, rng));
}

/// A mixed script exercising batching, both analysis properties, memo
/// hits, mutation, admission and the metrics dump over two sessions.
std::vector<std::string> script(const std::string& big) {
  std::vector<std::string> s;
  s.push_back(load_line("paper", paper_text()));
  s.push_back(load_line("big", big));
  // One coalesced batch over both sessions (equal options), with a
  // repeat that hits the memo.
  s.push_back(analyze_line("paper"));
  s.push_back(analyze_line("big"));
  s.push_back(analyze_line("paper"));
  // Option change splits the batch.
  s.push_back(analyze_line("paper", true));
  s.push_back(
      R"({"op":"analyze","session":"big","smax":"completion","id":"c1"})");
  // Mutate, then warm re-analyze.
  s.push_back(
      R"({"op":"add_flow","session":"paper","flow":"flow tau6 EF 72 0 70 path 1 3 4 costs 2"})");
  s.push_back(analyze_line("paper"));
  s.push_back(
      R"({"op":"admit","session":"paper","flow":"flow tau7 EF 72 0 70 path 9 10 costs 2","ef_mode":true})");
  s.push_back(R"({"op":"remove_flow","session":"paper","name":"tau6"})");
  s.push_back(analyze_line("paper"));
  s.push_back(R"({"op":"snapshot","session":"paper"})");
  s.push_back(R"({"op":"flush"})");
  s.push_back(R"({"op":"metrics"})");
  s.push_back(R"({"op":"shutdown"})");
  return s;
}

std::string transcript(const std::vector<std::string>& lines,
                       std::size_t workers) {
  obs::Telemetry telemetry;
  Loopback lb(test_config(workers), &telemetry);
  std::string out;
  for (const std::string& r : lb.roundtrip(lines)) {
    out += r;
    out += '\n';
  }
  return out;
}

TEST(Determinism, WorkerCountNeverChangesResponseBytes) {
  const std::string big = big_set_text();
  const std::vector<std::string> lines = script(big);
  const std::string one = transcript(lines, 1);
  ASSERT_FALSE(one.empty());
  // Sixteen responses, one per request, in arrival order.
  EXPECT_EQ(std::count(one.begin(), one.end(), '\n'),
            static_cast<std::ptrdiff_t>(lines.size()));
  EXPECT_EQ(transcript(lines, 2), one);
  EXPECT_EQ(transcript(lines, 8), one);
}

TEST(Determinism, ServeStreamMatchesLoopback) {
  const std::string big = big_set_text();
  const std::vector<std::string> lines = script(big);
  const std::string expected = transcript(lines, 2);

  std::string input;
  for (const std::string& l : lines) {
    input += l;
    input += '\n';
  }
  input += "\n   \n";  // blank lines are ignored by the stream transport
  std::istringstream in(input);
  std::ostringstream out;
  obs::Telemetry telemetry;
  Service svc(test_config(2), &telemetry);
  const ServeResult r = serve_stream(in, out, svc);
  EXPECT_TRUE(r.shutdown);
  EXPECT_EQ(r.requests, lines.size());
  EXPECT_EQ(out.str(), expected);
}

TEST(Determinism, ResponsesStayInArrivalOrder) {
  Loopback lb(test_config(4));
  std::vector<std::string> lines = {load_line("p", paper_text())};
  for (int i = 0; i < 6; ++i) lines.push_back(analyze_line("p"));
  lines.push_back(R"({"op":"metrics"})");
  const std::vector<std::string> responses = lb.roundtrip(lines);
  ASSERT_EQ(responses.size(), lines.size());
  for (std::size_t i = 0; i < responses.size(); ++i) {
    const std::string want = "{\"seq\":" + std::to_string(i + 1) + ",";
    EXPECT_EQ(responses[i].substr(0, want.size()), want) << responses[i];
  }
}

/// The batch size (how many analyzes coalesce before the batch closes)
/// must not change response bytes either — only latency.
TEST(Determinism, BatchBoundariesNeverChangeResponseBytes) {
  const std::vector<std::string> lines = {
      load_line("p", paper_text()), analyze_line("p"), analyze_line("p", true),
      analyze_line("p"),            analyze_line("p"),
  };
  ServiceConfig batched = test_config(2);
  ServiceConfig unbatched = test_config(2);
  unbatched.max_batch = 1;
  Loopback a(std::move(batched));
  Loopback b(std::move(unbatched));
  EXPECT_EQ(a.roundtrip(lines), b.roundtrip(lines));
}

}  // namespace
}  // namespace tfa::service
