// Live-observability contract of the service (docs/observability.md,
// "Live service observability"): wire-propagated trace ids (generated
// `t<seq>` or the client's `trace_id`, echoed on every envelope and
// identical across stdio, TCP and unix transports), the span context
// the trace id threads through the phase tree, the `statsz` exposition
// op answering bit-identically for every worker count, the flight
// recorder dumping on a deadline trip or a slow request, and the
// /metrics HTTP endpoint of the socket transport.
#include <gtest/gtest.h>
#include <unistd.h>

#include <cstdio>
#include <sstream>
#include <string>
#include <vector>

#include "base/net.h"
#include "obs/eventlog.h"
#include "obs/telemetry.h"
#include "service/loopback.h"
#include "service/serve.h"
#include "service/socket_transport.h"
#include "service_test_util.h"

namespace tfa::service {
namespace {

/// One line of the event log containing `needle`, or "" when none does.
std::string find_event(const obs::EventLog& log, const std::string& needle) {
  for (const std::string& line : log.lines())
    if (line.find(needle) != std::string::npos) return line;
  return "";
}

obs::EventLogConfig event_log_config() {
  obs::EventLogConfig cfg;
  auto t = std::make_shared<std::int64_t>(0);
  cfg.clock = [t] { return ++*t; };
  return cfg;
}

TEST(Tracing, GeneratedTraceIsTPlusSeqAndClientTraceWinsVerbatim) {
  Loopback lb(test_config());
  // No trace_id: the service generates "t<seq>".
  EXPECT_NE(lb.request(R"({"op":"flush"})").find(R"("trace":"t1")"),
            std::string::npos);
  // A client trace_id is echoed verbatim, on success and on error.
  EXPECT_NE(lb.request(R"({"op":"flush","trace_id":"req/α-7"})")
                .find(R"("trace":"req/α-7")"),
            std::string::npos);
  const std::string err = lb.request(
      R"({"op":"analyze","session":"ghost","trace_id":"lost-1"})");
  EXPECT_NE(err.find(R"("ok":false)"), std::string::npos) << err;
  EXPECT_NE(err.find(R"("trace":"lost-1")"), std::string::npos) << err;
  // Unparseable lines still echo a generated trace (the seq is
  // consumed, so the trace id stays a pure function of it).
  const std::string garbage = lb.request("garbage");
  EXPECT_NE(garbage.find(R"("trace":"t4")"), std::string::npos) << garbage;
}

TEST(Tracing, InvalidTraceIdIsRejectedWithTheGeneratedTrace) {
  Loopback lb(test_config());
  const std::vector<std::string> bad = {
      R"({"op":"flush","trace_id":42})",
      R"({"op":"flush","trace_id":""})",
      R"({"op":"flush","trace_id":")" + std::string(65, 'x') + R"("})",
  };
  std::uint64_t seq = 0;
  for (const std::string& line : bad) {
    const std::string response = lb.request(line);
    ++seq;
    EXPECT_NE(response.find(R"("code":"bad_request")"), std::string::npos)
        << response;
    EXPECT_NE(response.find("'trace_id' must be a non-empty string"),
              std::string::npos)
        << response;
    // The rejected request cannot supply its own trace; the generated
    // one is echoed so the error is still correlatable.
    EXPECT_NE(response.find("\"trace\":\"t" + std::to_string(seq) + "\""),
              std::string::npos)
        << response;
  }
}

/// A script that exercises both generated and client-supplied trace ids
/// across session and service ops.
std::vector<std::string> traced_script() {
  std::vector<std::string> s;
  s.push_back(load_line("paper", paper_text()));
  s.push_back(R"({"op":"analyze","session":"paper","trace_id":"an-1"})");
  s.push_back(analyze_line("paper"));
  s.push_back(R"({"op":"statsz","session":"paper","trace_id":"sz-1"})");
  s.push_back(R"({"op":"flush","trace_id":"fl-1"})");
  s.push_back(R"({"op":"shutdown"})");
  return s;
}

std::string loopback_transcript(const std::vector<std::string>& lines) {
  ServiceConfig cfg;
  cfg.workers = 2;
  Loopback lb(std::move(cfg));
  std::string out;
  for (const std::string& r : lb.roundtrip(lines)) {
    out += r;
    out += '\n';
  }
  return out;
}

std::string socket_transcript(net::LineClient& client,
                              const std::vector<std::string>& lines) {
  std::string out;
  for (const std::string& l : lines) EXPECT_TRUE(client.send_line(l));
  for (std::size_t i = 0; i < lines.size(); ++i) {
    const auto r = client.read_line();
    if (!r.has_value()) {
      ADD_FAILURE() << "connection dropped after " << i << " responses";
      break;
    }
    out += *r;
    out += '\n';
  }
  return out;
}

/// Trace echo is transport-independent: the same traced script answers
/// byte-identically over the in-process loopback, stdio serve_stream,
/// a TCP connection and a unix-domain connection (default clock, no
/// telemetry — latency never reaches the wire).
TEST(Tracing, TraceEchoIsIdenticalAcrossStdioTcpAndUnix) {
  const std::vector<std::string> lines = traced_script();
  const std::string expected = loopback_transcript(lines);
  EXPECT_NE(expected.find(R"("trace":"t1")"), std::string::npos) << expected;
  EXPECT_NE(expected.find(R"("trace":"an-1")"), std::string::npos) << expected;

  {
    std::string input;
    for (const std::string& l : lines) input += l + "\n";
    std::istringstream in(input);
    std::ostringstream out;
    ServiceConfig cfg;
    cfg.workers = 2;
    Service svc(std::move(cfg));
    serve_stream(in, out, svc);
    EXPECT_EQ(out.str(), expected);
  }

  {
    SocketServerConfig cfg;
    cfg.service.workers = 2;
    SocketServer server(std::move(cfg));
    std::string error;
    ASSERT_TRUE(server.start(&error)) << error;
    net::LineClient client(net::connect_tcp(server.port(), &error));
    ASSERT_TRUE(client.connected()) << error;
    EXPECT_EQ(socket_transcript(client, lines), expected);
    server.wait();
    server.stop();
  }

  {
    const std::string path = testing::TempDir() + "tfa_tracing_test_" +
                             std::to_string(::getpid()) + ".sock";
    SocketServerConfig cfg;
    cfg.service.workers = 2;
    cfg.unix_path = path;
    SocketServer server(std::move(cfg));
    std::string error;
    ASSERT_TRUE(server.start(&error)) << error;
    net::LineClient client(net::connect_unix(path, &error));
    ASSERT_TRUE(client.connected()) << error;
    EXPECT_EQ(socket_transcript(client, lines), expected);
    server.wait();
    server.stop();
    std::remove(path.c_str());
  }
}

/// The wire trace id becomes the span context of the phase spans the
/// request opens — on the service tracer for immediate ops, and on the
/// session tracer for the engine run an `analyze` triggers — so a trace
/// file reconstructs one request's whole phase tree.
TEST(Tracing, WireTraceBecomesSpanContext) {
  obs::Telemetry telemetry;
  Loopback lb(test_config(), &telemetry);
  (void)lb.request(load_line("paper", paper_text()));
  (void)lb.request(
      R"({"op":"analyze","session":"paper","trace_id":"phase-7"})");
  (void)lb.request(
      R"({"op":"snapshot","session":"paper","trace_id":"snap-1"})");

  // Service tracer: each immediate op's span carries that request's
  // trace (generated for the traceless load, verbatim for snapshot).
  bool saw_generated = false;
  bool saw_client = false;
  for (const obs::Tracer::Event& ev : telemetry.trace.events()) {
    if (ev.name == "service.load_network") {
      EXPECT_EQ(ev.trace, "t1");
      saw_generated = true;
    }
    if (ev.name == "service.snapshot") {
      EXPECT_EQ(ev.trace, "snap-1");
      saw_client = true;
    }
  }
  EXPECT_TRUE(saw_generated);
  EXPECT_TRUE(saw_client);

  // Session tracer: the engine's phase spans ran under the analyze
  // request's trace, and the trace id reaches the chrome trace file.
  Session* sess = lb.service().sessions().find("paper");
  ASSERT_NE(sess, nullptr);
  bool saw_engine_span = false;
  for (const obs::Tracer::Event& ev : sess->telemetry.trace.events())
    if (ev.trace == "phase-7") saw_engine_span = true;
  EXPECT_TRUE(saw_engine_span);
  EXPECT_NE(sess->telemetry.trace.chrome_trace_json().find("phase-7"),
            std::string::npos);
}

/// `statsz` serves the deterministic metric kinds only, so its bytes —
/// like every other envelope's — are identical for every worker count.
TEST(Tracing, StatszIsByteIdenticalAcrossWorkerCounts) {
  const std::vector<std::string> lines = {
      load_line("paper", paper_text()),
      analyze_line("paper"),
      analyze_line("paper", true),
      R"({"op":"statsz","session":"paper"})",
      R"({"op":"statsz"})",
  };
  std::string reference;
  for (const std::size_t workers :
       {std::size_t{1}, std::size_t{2}, std::size_t{8}}) {
    obs::Telemetry telemetry;
    Loopback lb(test_config(workers), &telemetry);
    std::string out;
    for (const std::string& r : lb.roundtrip(lines)) out += r + "\n";
    if (reference.empty()) {
      reference = out;
      EXPECT_NE(out.find(R"("format":"prometheus")"), std::string::npos)
          << out;
      // Session scope serves the engine counters bare; the service-wide
      // view prefixes them with the session name.
      EXPECT_NE(out.find("tfa_trajectory_smax_passes"), std::string::npos)
          << out;
      EXPECT_NE(out.find("tfa_session_paper_trajectory_smax_passes"),
                std::string::npos)
          << out;
    } else {
      EXPECT_EQ(out, reference) << "workers=" << workers;
    }
  }
}

TEST(Tracing, StatszUnknownSessionIsAStructuredError) {
  Loopback lb(test_config());
  const std::string response =
      lb.request(R"({"op":"statsz","session":"ghost"})");
  EXPECT_NE(response.find(R"("code":"unknown_session")"), std::string::npos)
      << response;
}

/// A tripped deadline logs `service.deadline_miss` and dumps the flight
/// recorder: the ring of records leading up to the miss, the missed
/// request last.
TEST(Tracing, DeadlineMissDumpsTheFlightRecorder) {
  obs::EventLog log(event_log_config());
  ServiceConfig cfg = test_config();
  cfg.event_log = &log;
  cfg.flight_recorder_depth = 8;
  Loopback lb(std::move(cfg));
  // The counter clock advances 1ms per reading, so a 0ms deadline has
  // always expired by the time the batch closes.
  const std::vector<std::string> responses = lb.roundtrip({
      load_line("paper", paper_text()),
      R"({"op":"analyze","session":"paper","deadline_ms":0,"trace_id":"late-1"})",
  });
  ASSERT_EQ(responses.size(), 2u);
  EXPECT_NE(responses[1].find(R"("code":"deadline_exceeded")"),
            std::string::npos)
      << responses[1];
  EXPECT_NE(responses[1].find(R"("trace":"late-1")"), std::string::npos)
      << responses[1];

  const std::string miss = find_event(log, "service.deadline_miss");
  ASSERT_FALSE(miss.empty()) << log.dump();
  EXPECT_NE(miss.find(R"("severity":"warn")"), std::string::npos) << miss;
  EXPECT_NE(miss.find(R"("seq":2)"), std::string::npos) << miss;
  EXPECT_NE(miss.find(R"("op":"analyze")"), std::string::npos) << miss;
  EXPECT_NE(miss.find(R"("trace":"late-1")"), std::string::npos) << miss;

  const std::string dump = find_event(log, "service.flight_recorder");
  ASSERT_FALSE(dump.empty()) << log.dump();
  EXPECT_NE(dump.find(R"("trigger":"deadline")"), std::string::npos) << dump;
  EXPECT_NE(dump.find(R"("trace":"late-1")"), std::string::npos) << dump;
  // The ring holds both the preceding load_network and the missed
  // analyze itself (newest last).
  EXPECT_NE(dump.find(R"("op":"load_network")"), std::string::npos) << dump;
  const std::size_t load_at = dump.find(R"("op":"load_network")");
  const std::size_t miss_at = dump.find(R"("trace":"late-1","ok":false)");
  EXPECT_NE(miss_at, std::string::npos) << dump;
  EXPECT_LT(load_at, miss_at) << dump;
}

/// The latency trigger: with slow_request_ns set, any response at least
/// that slow dumps the recorder with trigger "slow_request".
TEST(Tracing, SlowRequestDumpsTheFlightRecorder) {
  obs::EventLog log(event_log_config());
  ServiceConfig cfg = test_config();
  cfg.event_log = &log;
  cfg.flight_recorder_depth = 4;
  cfg.slow_request_ns = 1;  // The counter clock makes every response 1ms.
  Loopback lb(std::move(cfg));
  (void)lb.request(R"({"op":"flush","trace_id":"slow-1"})");
  const std::string dump = find_event(log, "service.flight_recorder");
  ASSERT_FALSE(dump.empty()) << log.dump();
  EXPECT_NE(dump.find(R"("trigger":"slow_request")"), std::string::npos)
      << dump;
  EXPECT_NE(dump.find(R"("trace":"slow-1")"), std::string::npos) << dump;
}

/// With the recorder disabled (depth 0), a deadline miss still logs the
/// miss event but no dump.
TEST(Tracing, DisabledFlightRecorderLogsMissesWithoutDumps) {
  obs::EventLog log(event_log_config());
  ServiceConfig cfg = test_config();
  cfg.event_log = &log;
  cfg.flight_recorder_depth = 0;
  Loopback lb(std::move(cfg));
  (void)lb.roundtrip({
      load_line("paper", paper_text()),
      R"({"op":"analyze","session":"paper","deadline_ms":0})",
  });
  EXPECT_FALSE(find_event(log, "service.deadline_miss").empty()) << log.dump();
  EXPECT_TRUE(find_event(log, "service.flight_recorder").empty())
      << log.dump();
}

/// The socket transport's /metrics endpoint: ephemeral bind, one GET
/// serves the live Prometheus text, anything else is answered 405.
TEST(MetricsEndpoint, ServesLiveRegistryOverHttp) {
  SocketServerConfig cfg;
  cfg.service.workers = 1;
  cfg.metrics_port = 0;
  SocketServer server(std::move(cfg));
  std::string error;
  ASSERT_TRUE(server.start(&error)) << error;
  ASSERT_NE(server.metrics_port(), 0);

  net::LineClient client(net::connect_tcp(server.port(), &error));
  ASSERT_TRUE(client.connected()) << error;
  ASSERT_TRUE(client.send_line(load_line("paper", paper_text())));
  ASSERT_TRUE(client.read_line().has_value());
  ASSERT_TRUE(client.send_line(analyze_line("paper")));
  ASSERT_TRUE(client.read_line().has_value());

  net::LineClient scrape(net::connect_tcp(server.metrics_port(), &error));
  ASSERT_TRUE(scrape.connected()) << error;
  ASSERT_TRUE(scrape.send_raw("GET /metrics HTTP/1.0\r\n\r\n"));
  std::string body;
  std::optional<std::string> first_line;
  while (const auto line = scrape.read_line()) {
    if (!first_line.has_value()) first_line = *line;
    body += *line;
    body += '\n';
  }
  ASSERT_TRUE(first_line.has_value());
  EXPECT_NE(first_line->find("200 OK"), std::string::npos) << *first_line;
  EXPECT_NE(body.find("tfa_service_net_requests 2"), std::string::npos)
      << body;
  EXPECT_NE(body.find("tfa_service_net_request_latency_ns_count"),
            std::string::npos)
      << body;
  EXPECT_NE(body.find("tfa_session_paper_trajectory_smax_passes"),
            std::string::npos)
      << body;

  net::LineClient bad(net::connect_tcp(server.metrics_port(), &error));
  ASSERT_TRUE(bad.connected()) << error;
  ASSERT_TRUE(bad.send_raw("POST /metrics HTTP/1.0\r\n\r\n"));
  const auto status = bad.read_line();
  ASSERT_TRUE(status.has_value());
  EXPECT_NE(status->find("405"), std::string::npos) << *status;

  // The same text is available in-process.
  EXPECT_NE(server.metrics_text().find("tfa_service_net_requests"),
            std::string::npos);
  server.stop();
}

}  // namespace
}  // namespace tfa::service
