// Mixed-request soak: a deterministic pseudo-random stream of valid,
// malformed and mis-addressed requests (10k under the soak label, a
// smaller default for the tier-1 lane) pushed through one Service.  The
// properties under test are liveness and containment: exactly one
// well-formed JSON response per request, in order, and no crash — the
// asan-ubsan preset runs the same binary as the memory-safety soak.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "base/json.h"
#include "base/rng.h"
#include "service/loopback.h"
#include "service_test_util.h"

namespace tfa::service {
namespace {

std::string flow_line(int id, std::int64_t period, int a, int b) {
  return "flow s" + std::to_string(id) + " EF " + std::to_string(period) +
         " 0 " + std::to_string(period * 4) + " path " + std::to_string(a) +
         " " + std::to_string(b) + " costs 1";
}

void run_soak(std::size_t requests) {
  Rng rng(0x50ac);
  Service svc(test_config(2));
  const std::vector<std::string> session_names = {"a", "b", "ghost"};
  int next_flow = 0;
  std::uint64_t responses = 0;
  std::uint64_t expected_seq = 0;

  const auto drain = [&] {
    while (const auto r = svc.next_response()) {
      ++responses;
      ++expected_seq;
      JsonError err;
      const auto doc = json_parse(*r, &err);
      ASSERT_TRUE(doc.has_value())
          << *r << "\n  offset " << err.offset << ": " << err.message;
      ASSERT_NE(doc->find("seq"), nullptr);
      ASSERT_EQ(static_cast<std::uint64_t>(doc->find("seq")->number),
                expected_seq)
          << *r;
    }
  };

  // Two live sessions on a tiny network; "ghost" is never created, so a
  // third of the addressed traffic exercises the unknown_session path.
  svc.submit(load_line("a", "network 6 1 1\n"));
  svc.submit(load_line("b", "network 6 1 1\nflow base EF 20 0 80 path 0 1 costs 1\n"));

  for (std::size_t i = 0; i < requests; ++i) {
    const std::string& session =
        session_names[static_cast<std::size_t>(rng.uniform(0, 2))];
    const std::string session_json = "\"" + session + "\"";
    const double dice = rng.uniform01();
    if (dice < 0.35) {
      std::string line = "{\"op\":\"analyze\",\"session\":" + session_json;
      if (rng.chance(0.3)) line += ",\"ef_mode\":true";
      if (rng.chance(0.2)) line += ",\"smax\":\"completion\"";
      if (rng.chance(0.1)) line += ",\"deadline_ms\":0";
      line += "}";
      svc.submit(line);
    } else if (dice < 0.50) {
      const int id = next_flow++;
      const int a = static_cast<int>(rng.uniform(0, 5));
      int b = static_cast<int>(rng.uniform(0, 5));
      if (b == a) b = (b + 1) % 6;
      svc.submit("{\"op\":\"add_flow\",\"session\":" + session_json +
                 ",\"flow\":\"" +
                 flow_line(id, 20 + 10 * rng.uniform(0, 6), a, b) + "\"}");
    } else if (dice < 0.58) {
      svc.submit("{\"op\":\"remove_flow\",\"session\":" + session_json +
                 ",\"name\":\"s" +
                 std::to_string(rng.uniform(0, next_flow + 1)) + "\"}");
    } else if (dice < 0.66) {
      const int id = next_flow++;
      svc.submit("{\"op\":\"admit\",\"session\":" + session_json +
                 ",\"flow\":\"" + flow_line(id, 40, 2, 3) +
                 "\",\"ef_mode\":true}");
    } else if (dice < 0.70) {
      svc.submit("{\"op\":\"snapshot\",\"session\":" + session_json + "}");
    } else if (dice < 0.75) {
      // Provisioning, sometimes with a capacity target and a what-if
      // probe (the probe path runs many plans per request).
      std::string line = "{\"op\":\"provision\",\"session\":" + session_json;
      if (rng.chance(0.5))
        line += ",\"capacity\":" + std::to_string(rng.uniform(1, 200));
      if (rng.chance(0.3))
        line += ",\"flow\":\"" + flow_line(next_flow++, 40, 1, 2) + "\"";
      line += "}";
      svc.submit(line);
    } else if (dice < 0.78) {
      svc.submit(R"({"op":"metrics"})");
    } else if (dice < 0.80) {
      svc.submit(R"({"op":"flush"})");
    } else {
      // Malformed of every stripe.
      const std::string kBad[] = {
          "",
          "   ",
          "{",
          "not json at all",
          R"({"op":"analyze")",
          R"({"op":"warp","session":"a"})",
          R"({"op":"analyze","session":17})",
          R"({"op":"analyze","session":"a","bogus":true})",
          R"({"op":"add_flow","session":"a","flow":"flow bad"})",
          R"({"op":"load_network","session":"a","text":"network 6 1 1"})",
          R"([{"op":"analyze"}])",
          R"({"op":"provision","session":"a","capacity":-3})",
          std::string(64, '{'),
      };
      svc.submit(kBad[static_cast<std::size_t>(
          rng.uniform(0, static_cast<std::int64_t>(std::size(kBad)) - 1))]);
    }
    if (rng.chance(0.05)) svc.flush();
    drain();

    // Keep the live sets small so the soak stays fast: trim the oldest
    // soak flows once a session grows past a dozen.
    if (i % 97 == 0) {
      for (const char* s : {"a", "b"}) {
        Session* sess = svc.sessions().find(s);
        if (sess == nullptr) continue;
        while (sess->set.size() > 12) {
          const std::string victim = sess->set.flow(FlowIndex{1}).name();
          svc.submit("{\"op\":\"remove_flow\",\"session\":\"" +
                     std::string(s) + "\",\"name\":\"" + victim + "\"}");
        }
        drain();
      }
    }
  }
  svc.submit(R"({"op":"shutdown"})");
  svc.submit(analyze_line("a"));  // refused: draining
  svc.flush();
  drain();
  EXPECT_TRUE(svc.draining());
  EXPECT_EQ(responses, svc.requests());
}

TEST(Soak, MixedRequestsStayLiveAndOrdered) { run_soak(1'000); }

// The 10k-request soak the CI memory-safety lane runs (label: soak).
TEST(Soak, TenThousandMixedRequests) {
  if (std::getenv("TFA_FULL_SOAK") == nullptr) GTEST_SKIP()
      << "set TFA_FULL_SOAK=1 (the asan-ubsan soak lane does)";
  run_soak(10'000);
}

}  // namespace
}  // namespace tfa::service
