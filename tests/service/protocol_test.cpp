// Golden tests of the wire protocol (service/protocol.h): request
// parsing, the byte-exact response envelopes, duration encoding, id
// echo, and the analyze path answering bit-identically to an in-process
// trajectory::analyze() of the same set.
#include <gtest/gtest.h>

#include <string>

#include "base/json.h"
#include "model/paper_example.h"
#include "provision/planner.h"
#include "service/loopback.h"
#include "service/protocol.h"
#include "service_test_util.h"
#include "trajectory/analysis.h"

namespace tfa::service {
namespace {

TEST(Protocol, ParsesEveryOp) {
  const struct {
    const char* line;
    Op op;
  } kCases[] = {
      {R"({"op":"load_network","session":"s","text":"network 2 1 1"})",
       Op::kLoadNetwork},
      {R"({"op":"add_flow","session":"s","flow":"flow f EF 9 0 9 path 0 1 costs 1"})",
       Op::kAddFlow},
      {R"({"op":"remove_flow","session":"s","name":"f"})", Op::kRemoveFlow},
      {R"({"op":"analyze","session":"s"})", Op::kAnalyze},
      {R"({"op":"admit","session":"s","flow":"flow f EF 9 0 9 path 0 1 costs 1"})",
       Op::kAdmit},
      {R"({"op":"snapshot","session":"s"})", Op::kSnapshot},
      {R"({"op":"provision","session":"s"})", Op::kProvision},
      {R"({"op":"provision","session":"s","capacity":64,"flow":"flow p EF 9 0 9 path 0 costs 1"})",
       Op::kProvision},
      {R"({"op":"metrics"})", Op::kMetrics},
      {R"({"op":"statsz"})", Op::kStatsz},
      {R"({"op":"statsz","session":"s"})", Op::kStatsz},
      {R"({"op":"flush"})", Op::kFlush},
      {R"({"op":"shutdown"})", Op::kShutdown},
  };
  for (const auto& c : kCases) {
    const ParsedRequest p = parse_request(c.line);
    ASSERT_TRUE(p.ok) << c.line << ": " << p.error.message;
    EXPECT_EQ(p.request.op, c.op) << c.line;
    EXPECT_STREQ(to_string(p.request.op), p.op_text.c_str());
  }
}

TEST(Protocol, AnalyzeOptionsAndDeadline) {
  const ParsedRequest p = parse_request(
      R"({"op":"analyze","session":"s","ef_mode":true,"smax":"completion","deadline_ms":250,"id":"rq-1"})");
  ASSERT_TRUE(p.ok) << p.error.message;
  EXPECT_TRUE(p.request.analyze.ef_mode);
  EXPECT_EQ(p.request.analyze.smax, trajectory::SmaxSemantics::kCompletion);
  ASSERT_TRUE(p.request.deadline_ms.has_value());
  EXPECT_EQ(*p.request.deadline_ms, 250);
  EXPECT_EQ(p.id_json, "\"rq-1\"");
}

TEST(Protocol, IdEchoFormats) {
  EXPECT_EQ(parse_request(R"({"op":"flush","id":"a\"b"})").id_json,
            "\"a\\\"b\"");
  EXPECT_EQ(parse_request(R"({"op":"flush","id":42})").id_json, "42");
  EXPECT_EQ(parse_request(R"({"op":"flush"})").id_json, "");
  // Non-integral / non-string ids are rejected, but still parse far
  // enough to identify the op.
  const ParsedRequest p = parse_request(R"({"op":"flush","id":1.5})");
  EXPECT_FALSE(p.ok);
  EXPECT_EQ(p.error.code, "bad_request");
}

TEST(Protocol, DurationEncoding) {
  EXPECT_EQ(json_duration(0), "0");
  EXPECT_EQ(json_duration(1234), "1234");
  EXPECT_EQ(json_duration(kInfiniteDuration), "null");
  EXPECT_EQ(json_duration(kInfiniteDuration + 7), "null");
}

TEST(Protocol, EnvelopesAreByteExact) {
  EXPECT_EQ(ok_envelope(3, "7", "flush", "t3", "{\"flushed\":0}"),
            R"({"seq":3,"id":7,"ok":true,"op":"flush","trace":"t3","result":{"flushed":0}})");
  // An empty trace omits the field entirely (the shed envelope's case).
  EXPECT_EQ(ok_envelope(3, "7", "flush", "", "{\"flushed\":0}"),
            R"({"seq":3,"id":7,"ok":true,"op":"flush","result":{"flushed":0}})");
  WireError e;
  e.code = "parse_error";
  e.message = "unterminated string";
  e.offset = 14;
  EXPECT_EQ(
      error_envelope(9, "", "", "t9", e),
      R"({"seq":9,"ok":false,"op":null,"trace":"t9","error":{"code":"parse_error","message":"unterminated string","offset":14}})");
  WireError f;
  f.code = "bad_flow_set";
  f.message = "line 2: oops";
  f.line = 2;
  EXPECT_EQ(
      error_envelope(1, "\"x\"", "load_network", "req-7", f),
      R"({"seq":1,"id":"x","ok":false,"op":"load_network","trace":"req-7","error":{"code":"bad_flow_set","message":"line 2: oops","line":2}})");
}

TEST(Protocol, GoldenTranscript) {
  Loopback lb(test_config());
  EXPECT_EQ(
      lb.request(load_line("net", "network 3 1 1\n"
                                  "flow a EF 40 0 40 path 0 1 costs 2\n")),
      R"({"seq":1,"ok":true,"op":"load_network","trace":"t1","result":{"session":"net","flows":1,"nodes":3}})");
  EXPECT_EQ(
      lb.request(R"({"op":"analyze","session":"net","id":1})"),
      R"({"seq":2,"id":1,"ok":true,"op":"analyze","trace":"t2","result":{"cached":false,)"
      R"("all_schedulable":true,"converged":true,"bounds":[{"flow":"a",)"
      R"("response":5,"jitter":0,"busy_period":2,"delta":0,)"
      R"("schedulable":true}],"stats":{"smax_passes":1,"cache_hits":0,)"
      R"("cache_misses":0,"warm_seeded":0}}})");
  EXPECT_EQ(
      lb.request(R"({"op":"flush"})"),
      R"({"seq":3,"ok":true,"op":"flush","trace":"t3","result":{"flushed":0}})");
  // A client-supplied trace_id is echoed verbatim instead of the
  // generated one.
  EXPECT_EQ(
      lb.request(R"({"op":"shutdown","trace_id":"bye-1"})"),
      R"({"seq":4,"ok":true,"op":"shutdown","trace":"bye-1","result":{"sessions":1,"requests":4}})");
}

/// The wire path must compute the exact in-process bounds (paper Table 2
/// set, both properties).
TEST(Protocol, AnalyzeMatchesInProcess) {
  for (const bool ef : {false, true}) {
    Loopback lb(test_config());
    ASSERT_TRUE(lb.request(load_line("p", paper_text())).find("\"ok\":true") !=
                std::string::npos);
    const std::string response = lb.request(analyze_line("p", ef));
    const auto doc = json_parse(response);
    ASSERT_TRUE(doc.has_value()) << response;
    const JsonValue* result = doc->find("result");
    ASSERT_NE(result, nullptr) << response;
    const JsonValue* bounds = result->find("bounds");
    ASSERT_NE(bounds, nullptr);

    trajectory::Config cfg;
    cfg.ef_mode = ef;
    const model::FlowSet set = model::paper_example();
    const trajectory::Result direct = trajectory::analyze(set, cfg);
    ASSERT_EQ(bounds->array.size(), direct.bounds.size());
    for (std::size_t i = 0; i < direct.bounds.size(); ++i) {
      const JsonValue& b = bounds->array[i];
      EXPECT_EQ(b.find("flow")->string,
                set.flow(direct.bounds[i].flow).name());
      EXPECT_EQ(static_cast<Duration>(b.find("response")->number),
                direct.bounds[i].response);
      EXPECT_EQ(b.find("schedulable")->boolean, direct.bounds[i].schedulable);
    }
  }
}

/// Every response the service emits must itself parse as strict JSON
/// (the emitters and the reader agree).
TEST(Protocol, ResponsesRoundTripThroughParser) {
  Loopback lb(test_config());
  const std::vector<std::string> lines = {
      load_line("p", paper_text()),
      analyze_line("p"),
      analyze_line("p", true),
      R"({"op":"snapshot","session":"p"})",
      R"({"op":"provision","session":"p"})",
      R"({"op":"provision","session":"p","capacity":50,"flow":"flow probe EF 100 0 900 path 1 3 costs 1"})",
      R"({"op":"metrics"})",
      R"(garbage)",
      R"({"op":"shutdown"})",
  };
  for (const std::string& response : lb.roundtrip(lines)) {
    JsonError err;
    EXPECT_TRUE(json_parse(response, &err).has_value())
        << response << "\n  at offset " << err.offset << ": " << err.message;
  }
}

/// The provision op must answer with the exact in-process plan: same
/// sizes, same binding attribution, same headroom count.
TEST(Protocol, ProvisionMatchesInProcess) {
  Loopback lb(test_config());
  ASSERT_NE(lb.request(load_line("p", paper_text())).find("\"ok\":true"),
            std::string::npos);
  const std::string response =
      lb.request(R"({"op":"provision","session":"p"})");
  const auto doc = json_parse(response);
  ASSERT_TRUE(doc.has_value()) << response;
  const JsonValue* result = doc->find("result");
  ASSERT_NE(result, nullptr) << response;

  const model::FlowSet set = model::paper_example();
  const provision::Plan direct = provision::plan(set);
  EXPECT_EQ(result->find("all_sizeable")->boolean, direct.all_sizeable);
  EXPECT_EQ(result->find("all_fit")->boolean, direct.all_fit);
  EXPECT_EQ(static_cast<Duration>(result->find("total_work")->number),
            direct.total_work);
  const JsonValue* nodes = result->find("nodes");
  ASSERT_NE(nodes, nullptr);
  ASSERT_EQ(nodes->array.size(), direct.nodes.size());
  for (std::size_t h = 0; h < direct.nodes.size(); ++h) {
    const JsonValue& n = nodes->array[h];
    const provision::NodeBuffer& nb = direct.nodes[h];
    EXPECT_EQ(static_cast<NodeId>(n.find("node")->number), nb.node);
    EXPECT_EQ(static_cast<Duration>(n.find("work")->number), nb.work);
    EXPECT_EQ(static_cast<Duration>(n.find("packets")->number), nb.packets);
    if (nb.binding_flow == kNoFlow) {
      EXPECT_EQ(n.find("binding_flow")->kind, JsonValue::Kind::kNull);
    } else {
      EXPECT_EQ(n.find("binding_flow")->string,
                set.flow(nb.binding_flow).name());
    }
    EXPECT_EQ(static_cast<std::size_t>(n.find("binding_segment")->number),
              nb.binding_segment);
  }
  // Probe + capacity reports the headroom of the same what-if search.
  const std::string probe_line = "flow probe EF 100 0 900 path 1 3 costs 1";
  const std::string probed = lb.request(
      R"({"op":"provision","session":"p","capacity":60,"flow":")" +
      probe_line + R"("})");
  const auto pdoc = json_parse(probed);
  ASSERT_TRUE(pdoc.has_value()) << probed;
  const JsonValue* presult = pdoc->find("result");
  ASSERT_NE(presult, nullptr) << probed;
  const JsonValue* headroom = presult->find("headroom");
  ASSERT_NE(headroom, nullptr) << probed;
  const model::SporadicFlow probe("probe", model::Path{1, 3}, 100, 1, 0, 900,
                                  model::ServiceClass::kExpedited);
  provision::Config pcfg;
  pcfg.capacity = 60;
  EXPECT_EQ(static_cast<std::size_t>(headroom->number),
            provision::max_clones_within(set, probe, 60, pcfg));
}

}  // namespace
}  // namespace tfa::service
