// Concurrent socket soak: several client threads hammer one
// SocketServer with a deterministic pseudo-random mix of valid,
// malformed, oversized and partially-framed requests over shared
// sessions.  The properties under test are liveness and containment
// under real concurrency: every connection gets exactly one well-formed
// response per request with per-connection sequence numbers in order,
// no request wedges or crashes the server, and the drain on stop()
// leaves nothing unanswered.  The asan-ubsan preset runs this same
// binary as the memory-safety soak (label: service-soak).
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "base/json.h"
#include "base/net.h"
#include "base/rng.h"
#include "obs/eventlog.h"
#include "service/socket_transport.h"

namespace tfa::service {
namespace {

std::string flow_line(std::size_t client, int id, std::int64_t period, int a,
                      int b) {
  return "flow c" + std::to_string(client) + "_" + std::to_string(id) +
         " EF " + std::to_string(period) + " 0 " + std::to_string(period * 4) +
         " path " + std::to_string(a) + " " + std::to_string(b) + " costs 1";
}

/// One client thread: a closed loop of mixed requests over its own
/// connection, validating envelope shape and per-connection seq order.
struct SoakClient {
  std::size_t id = 0;
  std::size_t requests = 0;
  std::uint16_t port = 0;

  std::size_t responses = 0;
  std::vector<std::string> problems;

  void fail(const std::string& what) {
    if (problems.size() < 8) problems.push_back(what);
  }

  void run() {
    Rng rng(0x50cc + 31 * static_cast<std::uint64_t>(id));
    std::string error;
    net::LineClient client(net::connect_tcp(port, &error));
    if (!client.connected()) {
      fail("connect: " + error);
      return;
    }
    const std::vector<std::string> sessions = {"a", "b", "ghost"};
    // Flow names cycle through a bounded window so the shared sets stay
    // small for the whole soak (re-adding a live name is a cheap
    // duplicate_flow error, which the mix wants to see anyway);
    // otherwise analyze cost grows quadratically over a long run.
    constexpr int kFlowWindow = 24;
    int next_flow = 0;
    std::uint64_t expected_seq = 0;
    for (std::size_t i = 0; i < requests; ++i) {
      const std::string& session =
          sessions[static_cast<std::size_t>(rng.uniform(0, 2))];
      const std::string session_json = "\"" + session + "\"";
      std::string line;
      const double dice = rng.uniform01();
      if (dice < 0.30) {
        line = "{\"op\":\"analyze\",\"session\":" + session_json;
        if (rng.chance(0.3)) line += ",\"ef_mode\":true";
        if (rng.chance(0.1)) line += ",\"deadline_ms\":0";
        line += "}";
      } else if (dice < 0.45) {
        const int a = static_cast<int>(rng.uniform(0, 5));
        int b = static_cast<int>(rng.uniform(0, 5));
        if (b == a) b = (b + 1) % 6;
        line = "{\"op\":\"add_flow\",\"session\":" + session_json +
               ",\"flow\":\"" +
               flow_line(id, next_flow++ % kFlowWindow,
                         20 + 10 * rng.uniform(0, 6), a, b) +
               "\"}";
      } else if (dice < 0.55) {
        line = "{\"op\":\"remove_flow\",\"session\":" + session_json +
               ",\"name\":\"c" + std::to_string(id) + "_" +
               std::to_string(rng.uniform(0, kFlowWindow)) + "\"}";
      } else if (dice < 0.63) {
        line = "{\"op\":\"snapshot\",\"session\":" + session_json + "}";
      } else if (dice < 0.70) {
        line = R"({"op":"metrics"})";
      } else if (dice < 0.76) {
        line = R"({"op":"flush"})";
      } else if (dice < 0.82) {
        // Oversized: refused while being read, answered with an
        // envelope, and the connection keeps framing correctly.
        line = std::string(3000, 'z');
      } else {
        const std::string kBad[] = {
            "{",
            "not json at all",
            R"({"op":"analyze")",
            R"({"op":"warp","session":"a"})",
            R"({"op":"analyze","session":17})",
            std::string(64, '{'),
        };
        line = kBad[static_cast<std::size_t>(
            rng.uniform(0, static_cast<std::int64_t>(std::size(kBad)) - 1))];
      }
      // A third of the requests go out split into two frames, so the
      // server's per-connection reassembly is constantly exercised.
      bool sent;
      if (line.size() > 2 && rng.chance(0.33)) {
        const std::size_t cut =
            static_cast<std::size_t>(rng.uniform(
                1, static_cast<std::int64_t>(line.size()) - 1));
        sent = client.send_raw(line.substr(0, cut)) &&
               client.send_raw(line.substr(cut) + "\n");
      } else {
        sent = client.send_line(line);
      }
      if (!sent) {
        fail("send failed at request " + std::to_string(i));
        return;
      }
      const auto response = client.read_line();
      if (!response.has_value()) {
        fail("connection dropped at request " + std::to_string(i));
        return;
      }
      ++responses;
      ++expected_seq;
      JsonError err;
      const auto doc = json_parse(*response, &err);
      if (!doc.has_value()) {
        fail("unparseable response: " + *response);
        continue;
      }
      const JsonValue* seq = doc->find("seq");
      if (seq == nullptr ||
          static_cast<std::uint64_t>(seq->number) != expected_seq)
        fail("out-of-order response: " + *response);
    }
    client.half_close();
    if (client.read_line().has_value())
      fail("unexpected trailing response after half-close");
  }
};

void run_socket_soak(std::size_t clients, std::size_t requests) {
  SocketServerConfig cfg;
  cfg.executors = 3;
  cfg.max_conns = clients + 1;
  cfg.service.max_request_bytes = 1024;  // the oversized mix stays cheap
  SocketServer server(std::move(cfg));
  std::string error;
  ASSERT_TRUE(server.start(&error)) << error;

  {
    net::LineClient setup(net::connect_tcp(server.port(), &error));
    ASSERT_TRUE(setup.connected()) << error;
    for (const char* line :
         {"{\"op\":\"load_network\",\"session\":\"a\",\"text\":"
          "\"network 6 1 1\\n\"}",
          "{\"op\":\"load_network\",\"session\":\"b\",\"text\":"
          "\"network 6 1 1\\nflow base EF 20 0 80 path 0 1 costs 1\\n\"}"}) {
      ASSERT_TRUE(setup.send_line(line));
      const auto r = setup.read_line();
      ASSERT_TRUE(r.has_value());
      ASSERT_NE(r->find("\"ok\":true"), std::string::npos) << *r;
    }
  }

  std::vector<SoakClient> workers(clients);
  std::vector<std::thread> threads;
  threads.reserve(clients);
  for (std::size_t i = 0; i < clients; ++i) {
    workers[i].id = i;
    workers[i].requests = requests;
    workers[i].port = server.port();
    threads.emplace_back([&workers, i] { workers[i].run(); });
  }
  for (std::thread& t : threads) t.join();
  server.stop();

  std::size_t answered = 0;
  for (const SoakClient& w : workers) {
    answered += w.responses;
    for (const std::string& p : w.problems)
      ADD_FAILURE() << "client " << w.id << ": " << p;
    EXPECT_EQ(w.responses, requests) << "client " << w.id;
  }
  // +2 setup requests; oversized lines count as served requests too.
  EXPECT_EQ(server.requests_served(), answered + 2);
  EXPECT_EQ(server.connections_shed(), 0u);
}

TEST(SocketSoak, ConcurrentMixedClientsStayLiveAndOrdered) {
  run_socket_soak(/*clients=*/4, /*requests=*/150);
}

// The larger soak the CI memory-safety lane runs (label: service-soak).
TEST(SocketSoak, ManyClientsManyRequests) {
  if (std::getenv("TFA_FULL_SOAK") == nullptr) GTEST_SKIP()
      << "set TFA_FULL_SOAK=1 (the asan-ubsan soak lane does)";
  run_socket_soak(/*clients=*/8, /*requests=*/1'000);
}

// --- shard-routed soak -----------------------------------------------
//
// Each client owns a PRIVATE session and drives a deterministic script
// of shard-routed requests (admit / add_flow / remove_flow / snapshot /
// analyze — every op session-local, so a session's responses are a pure
// function of its own request order, never of cross-session
// interleaving).  Flows land in three disjoint node clusters with
// occasional cluster-crossing "hub" flows, so the session's shard
// partition keeps merging and splitting throughout the soak.  The
// property: the full per-session response transcript is BYTE-identical
// for every executor count.

/// The deterministic request script of one shard-soak client.  Line 0
/// loads the private session's network.
std::vector<std::string> shard_script(std::size_t client,
                                      std::size_t requests) {
  Rng rng(0x5A4D + 97 * static_cast<std::uint64_t>(client));
  const std::string session_json =
      "\"s" + std::to_string(client) + "\"";
  std::vector<std::string> lines;
  lines.reserve(requests);
  lines.push_back("{\"op\":\"load_network\",\"session\":" + session_json +
                  ",\"text\":\"network 12 1 1\\n\"}");
  constexpr int kWindow = 16;
  int next_flow = 0;
  const auto flow_text = [&rng](const std::string& name) {
    const std::int64_t period = 20 + 10 * rng.uniform(0, 6);
    std::string path;
    if (rng.chance(0.12)) {
      // Hub flow crossing all three clusters: welds shards together.
      path = "1 5 9";
    } else {
      const std::int64_t cluster = rng.uniform(0, 2);
      const std::int64_t a = 4 * cluster + rng.uniform(0, 3);
      std::int64_t b = 4 * cluster + rng.uniform(0, 3);
      if (b == a) b = 4 * cluster + (b - 4 * cluster + 1) % 4;
      path = std::to_string(a) + " " + std::to_string(b);
    }
    // A tight deadline now and then, so the mix sees real rejections.
    const std::int64_t deadline =
        rng.chance(0.15) ? 3 : period * 4;
    return "flow " + name + " EF " + std::to_string(period) + " 0 " +
           std::to_string(deadline) + " path " + path + " costs 1";
  };
  while (lines.size() < requests) {
    const double dice = rng.uniform01();
    std::string line;
    if (dice < 0.40) {
      line = "{\"op\":\"admit\",\"session\":" + session_json +
             ",\"flow\":\"" +
             flow_text("f" + std::to_string(next_flow++ % kWindow)) + "\"";
      if (rng.chance(0.25)) line += ",\"ef_mode\":true";
      line += "}";
    } else if (dice < 0.58) {
      line = "{\"op\":\"add_flow\",\"session\":" + session_json +
             ",\"flow\":\"" +
             flow_text("g" + std::to_string(next_flow++ % kWindow)) + "\"}";
    } else if (dice < 0.74) {
      const char prefix = rng.chance(0.5) ? 'f' : 'g';
      line = "{\"op\":\"remove_flow\",\"session\":" + session_json +
             ",\"name\":\"" + prefix +
             std::to_string(rng.uniform(0, kWindow - 1)) + "\"}";
    } else if (dice < 0.86) {
      line = "{\"op\":\"snapshot\",\"session\":" + session_json + "}";
    } else {
      line = "{\"op\":\"analyze\",\"session\":" + session_json;
      if (rng.chance(0.3)) line += ",\"ef_mode\":true";
      line += "}";
    }
    lines.push_back(std::move(line));
  }
  return lines;
}

/// One shard-soak client: replays its script over its own connection
/// and records every response byte.
struct ShardClient {
  std::size_t id = 0;
  std::uint16_t port = 0;
  std::vector<std::string> script;

  std::vector<std::string> transcript;
  std::vector<std::string> problems;

  void run() {
    std::string error;
    net::LineClient client(net::connect_tcp(port, &error));
    if (!client.connected()) {
      problems.push_back("connect: " + error);
      return;
    }
    for (std::size_t i = 0; i < script.size(); ++i) {
      if (!client.send_line(script[i])) {
        problems.push_back("send failed at request " + std::to_string(i));
        return;
      }
      const auto response = client.read_line();
      if (!response.has_value()) {
        problems.push_back("dropped at request " + std::to_string(i));
        return;
      }
      transcript.push_back(*response);
    }
  }
};

/// Runs `clients` shard-soak clients against a server with `executors`
/// executor threads; returns the per-client transcripts.
std::vector<std::vector<std::string>> run_shard_soak(std::size_t executors,
                                                     std::size_t clients,
                                                     std::size_t requests) {
  SocketServerConfig cfg;
  cfg.executors = executors;
  cfg.max_conns = clients + 1;
  SocketServer server(std::move(cfg));
  std::string error;
  EXPECT_TRUE(server.start(&error)) << error;

  std::vector<ShardClient> workers(clients);
  std::vector<std::thread> threads;
  threads.reserve(clients);
  for (std::size_t i = 0; i < clients; ++i) {
    workers[i].id = i;
    workers[i].port = server.port();
    workers[i].script = shard_script(i, requests);
    threads.emplace_back([&workers, i] { workers[i].run(); });
  }
  for (std::thread& t : threads) t.join();
  server.stop();

  std::vector<std::vector<std::string>> transcripts;
  for (ShardClient& w : workers) {
    for (const std::string& p : w.problems)
      ADD_FAILURE() << "client " << w.id << ": " << p;
    EXPECT_EQ(w.transcript.size(), requests) << "client " << w.id;
    transcripts.push_back(std::move(w.transcript));
  }
  return transcripts;
}

void check_shard_soak(std::size_t clients, std::size_t requests) {
  const auto serial = run_shard_soak(1, clients, requests);
  const auto fanned = run_shard_soak(4, clients, requests);
  ASSERT_EQ(serial.size(), fanned.size());
  std::size_t admitted = 0;
  std::size_t rejected = 0;
  std::size_t merged = 0;
  for (std::size_t c = 0; c < serial.size(); ++c) {
    ASSERT_EQ(serial[c].size(), fanned[c].size()) << "client " << c;
    for (std::size_t i = 0; i < serial[c].size(); ++i) {
      // The headline property: shard routing keeps every response byte
      // independent of the executor count.
      ASSERT_EQ(serial[c][i], fanned[c][i])
          << "client " << c << " response " << i;
      if (serial[c][i].find("\"admitted\":true") != std::string::npos)
        ++admitted;
      if (serial[c][i].find("\"admitted\":false") != std::string::npos)
        ++rejected;
      const auto doc = json_parse(serial[c][i]);
      ASSERT_TRUE(doc.has_value()) << serial[c][i];
      if (const JsonValue* result = doc->find("result"); result != nullptr)
        if (const JsonValue* shard = result->find("shard"); shard != nullptr)
          merged += static_cast<std::size_t>(shard->find("merged")->number);
    }
  }
  // The soak only proves something if the mix genuinely exercised the
  // shard machinery: admissions in both verdicts, and hub flows that
  // welded previously separate shards together.
  EXPECT_GT(admitted, 0u);
  EXPECT_GT(rejected, 0u);
  EXPECT_GT(merged, 0u);
}

TEST(ShardSoak, ResponsesBitIdenticalAcrossExecutorCounts) {
  check_shard_soak(/*clients=*/4, /*requests=*/120);
}

// The 10k-request shard soak the CI memory-safety lane runs under
// asan-ubsan (label: service-soak).
TEST(ShardSoak, TenThousandShardRoutedRequests) {
  if (std::getenv("TFA_FULL_SOAK") == nullptr) GTEST_SKIP()
      << "set TFA_FULL_SOAK=1 (the asan-ubsan soak lane does)";
  check_shard_soak(/*clients=*/8, /*requests=*/1'250);
}

// --- full-observability soak -----------------------------------------
//
// The shard soak again, with the whole observability surface switched
// on: every request carries a client trace_id (echoed on its response,
// so the transcripts pin trace propagation too), a shared EventLog
// receives the service events, and the /metrics endpoint is scraped
// while the server is live.  Two determinism properties ride on top of
// liveness: response payload bytes stay bit-identical across executor
// counts, and so does each session's subsequence of shard-merge events
// (timestamps masked — the one host-dependent field of an event line).

/// The shard script with a per-request trace id (a pure function of the
/// client and request index, so transcripts stay comparable).
std::vector<std::string> traced_shard_script(std::size_t client,
                                             std::size_t requests) {
  std::vector<std::string> lines = shard_script(client, requests);
  for (std::size_t i = 0; i < lines.size(); ++i)
    lines[i].insert(lines[i].size() - 1, ",\"trace_id\":\"s" +
                                             std::to_string(client) + "r" +
                                             std::to_string(i) + "\"");
  return lines;
}

struct ObsSoakRun {
  std::vector<std::vector<std::string>> transcripts;
  std::vector<std::string> events;
  bool scrape_ok = false;
};

ObsSoakRun run_obs_shard_soak(std::size_t executors, std::size_t clients,
                              std::size_t requests) {
  obs::EventLogConfig log_cfg;
  // Nothing may evict: a ring that wraps would keep a suffix that
  // depends on cross-session interleaving, not on any per-session order.
  log_cfg.capacity = clients * requests + 64;
  obs::EventLog log(log_cfg);

  SocketServerConfig cfg;
  cfg.executors = executors;
  cfg.max_conns = clients + 1;
  cfg.metrics_port = 0;
  cfg.service.event_log = &log;
  cfg.service.flight_recorder_depth = 16;
  SocketServer server(std::move(cfg));
  std::string error;
  EXPECT_TRUE(server.start(&error)) << error;

  std::vector<ShardClient> workers(clients);
  std::vector<std::thread> threads;
  threads.reserve(clients);
  for (std::size_t i = 0; i < clients; ++i) {
    workers[i].id = i;
    workers[i].port = server.port();
    workers[i].script = traced_shard_script(i, requests);
    threads.emplace_back([&workers, i] { workers[i].run(); });
  }
  for (std::thread& t : threads) t.join();

  ObsSoakRun run;
  {
    net::LineClient http(net::connect_tcp(server.metrics_port(), &error));
    if (http.connected() &&
        http.send_raw("GET /metrics HTTP/1.0\r\n\r\n")) {
      std::string body;
      while (const auto l = http.read_line()) body += *l + "\n";
      run.scrape_ok =
          body.find("200 OK") != std::string::npos &&
          body.find("tfa_service_net_requests") != std::string::npos &&
          body.find("tfa_service_net_request_latency_ns_count") !=
              std::string::npos;
    }
  }
  server.stop();

  for (ShardClient& w : workers) {
    for (const std::string& p : w.problems)
      ADD_FAILURE() << "client " << w.id << ": " << p;
    EXPECT_EQ(w.transcript.size(), requests) << "client " << w.id;
    run.transcripts.push_back(std::move(w.transcript));
  }
  run.events = log.lines();
  return run;
}

/// One session's shard-merge events, timestamps masked.
std::vector<std::string> session_merge_events(
    const std::vector<std::string>& events, const std::string& session) {
  const std::string needle = "\"session\":\"" + session + "\"";
  std::vector<std::string> out;
  for (const std::string& line : events) {
    if (line.find("service.shard_merge") == std::string::npos) continue;
    if (line.find(needle) == std::string::npos) continue;
    const std::size_t at = line.find("\"severity\"");
    EXPECT_NE(at, std::string::npos) << line;
    out.push_back(line.substr(at));
  }
  return out;
}

void check_obs_shard_soak(std::size_t clients, std::size_t requests) {
  const ObsSoakRun serial = run_obs_shard_soak(1, clients, requests);
  const ObsSoakRun fanned = run_obs_shard_soak(4, clients, requests);
  ASSERT_EQ(serial.transcripts.size(), fanned.transcripts.size());
  for (std::size_t c = 0; c < serial.transcripts.size(); ++c) {
    ASSERT_EQ(serial.transcripts[c].size(), fanned.transcripts[c].size())
        << "client " << c;
    for (std::size_t i = 0; i < serial.transcripts[c].size(); ++i)
      ASSERT_EQ(serial.transcripts[c][i], fanned.transcripts[c][i])
          << "client " << c << " response " << i;
  }
  // Every response echoed its client trace id.
  EXPECT_NE(serial.transcripts[0][0].find("\"trace\":\"s0r0\""),
            std::string::npos)
      << serial.transcripts[0][0];
  // Per-session event subsequences are executor-count-independent.
  std::size_t merge_events = 0;
  for (std::size_t c = 0; c < clients; ++c) {
    const std::string session = "s" + std::to_string(c);
    const auto a = session_merge_events(serial.events, session);
    const auto b = session_merge_events(fanned.events, session);
    EXPECT_EQ(a, b) << "session " << session;
    merge_events += a.size();
  }
  // The soak only proves something if events actually flowed and the
  // endpoint answered while the server was under load.
  EXPECT_GT(merge_events, 0u);
  EXPECT_GT(serial.events.size(), 0u);
  EXPECT_TRUE(serial.scrape_ok);
  EXPECT_TRUE(fanned.scrape_ok);
}

TEST(ObsSoak, TracedResponsesAndEventsDeterministicAcrossExecutors) {
  check_obs_shard_soak(/*clients=*/4, /*requests=*/120);
}

// The 10k-request full-observability soak the CI memory-safety lane
// runs under asan-ubsan (label: service-soak).
TEST(ObsSoak, TenThousandRequestsWithFullObservability) {
  if (std::getenv("TFA_FULL_SOAK") == nullptr) GTEST_SKIP()
      << "set TFA_FULL_SOAK=1 (the asan-ubsan soak lane does)";
  check_obs_shard_soak(/*clients=*/8, /*requests=*/1'250);
}

}  // namespace
}  // namespace tfa::service
