// Integration tests: Property-3 bounds must dominate everything the
// DiffServ router simulation can produce for EF traffic.
#include <gtest/gtest.h>

#include "base/rng.h"
#include "diffserv/discipline.h"
#include "diffserv/ef_analysis.h"
#include "model/generators.h"
#include "model/paper_example.h"

namespace tfa::diffserv {
namespace {

using model::FlowSet;
using model::Network;
using model::Path;
using model::ServiceClass;
using model::SporadicFlow;

TEST(EfValidation, PaperExampleWithBackgroundTraffic) {
  // The paper's five flows as the EF class, plus bulk AF/BE background
  // sharing the core nodes.
  FlowSet set = model::paper_example();
  set.add(SporadicFlow("bulk-af", Path{2, 3, 4}, 200, 11, 0, 4000,
                       ServiceClass::kAssured1));
  set.add(SporadicFlow("bulk-be", Path{9, 10, 7}, 300, 15, 0, 4000,
                       ServiceClass::kBestEffort));

  sim::SearchConfig scfg;
  scfg.random_runs = 24;
  const EfValidation v = validate_ef(set, {}, scfg);
  ASSERT_TRUE(v.analysis.converged);
  ASSERT_EQ(v.analysis.bounds.size(), 5u);
  EXPECT_TRUE(v.sound);
  for (const auto& b : v.analysis.bounds) EXPECT_GT(b.delta, 0);
}

TEST(EfValidation, DeltaReflectsWorstBackgroundPacket) {
  FlowSet set(Network(3, 1, 1));
  set.add(SporadicFlow("voice", Path{0, 1, 2}, 50, 2, 0, 500));
  set.add(SporadicFlow("bulk", Path{0, 1, 2}, 100, 30, 0, 5000,
                       ServiceClass::kBestEffort));
  const trajectory::Result r = analyze_ef(set);
  ASSERT_EQ(r.bounds.size(), 1u);
  // Ingress: 30-1; downstream nodes: (30 - 2 + 0)^+ each.
  EXPECT_EQ(r.bounds[0].delta, 29 + 28 + 28);
}

TEST(EfValidation, SimulationShowsNonPreemptionBlocking) {
  // An EF packet arriving mid-way through a bulk BE transmission must be
  // observably delayed (the delta of Lemma 4 is real, not an analysis
  // artefact).  Staggered release: bulk at 0 (serving 0..30), voice
  // generated at 25.
  FlowSet set(Network(1, 1, 1));
  set.add(SporadicFlow("bulk", Path{0}, 50, 30, 0, 5000,
                       ServiceClass::kBestEffort));
  set.add(SporadicFlow("voice", Path{0}, 50, 2, 0, 500));

  sim::SimConfig cfg;
  cfg.pattern = sim::ArrivalPattern::kStaggered;  // voice offset = 25
  sim::NetworkSim sim(set, cfg, make_diffserv);
  sim.run();
  // Voice waits for the residual 5 ticks of bulk: completes at 32,
  // response 7 — below Lemma 4's residual-plus-service bound.
  EXPECT_EQ(sim.stats()[1].worst, 7);
}

TEST(EfValidation, SameTickArrivalFavoursEf) {
  // Model semantics: an EF and a BE packet arriving in the same tick at an
  // idle server — the FP scheduler must pick the EF packet.
  FlowSet set(Network(1, 1, 1));
  set.add(SporadicFlow("bulk", Path{0}, 50, 30, 0, 5000,
                       ServiceClass::kBestEffort));
  set.add(SporadicFlow("voice", Path{0}, 50, 2, 0, 500));
  sim::SimConfig cfg;
  cfg.pattern = sim::ArrivalPattern::kSynchronousBurst;
  sim::NetworkSim sim(set, cfg, make_diffserv);
  sim.run();
  EXPECT_EQ(sim.stats()[1].worst, 2);   // EF served first
  EXPECT_EQ(sim.stats()[0].worst, 32);  // bulk waits behind it
}

TEST(EfValidation, ReverseBackgroundFlowBlocksAtIngress) {
  // The Lemma-4 gap our implementation closes: a reverse-direction BE flow
  // whose entry into P_ef is NOT the ingress still crosses the ingress and
  // blocks there.  The generalized ingress term must cover the observed
  // response.
  FlowSet set(Network(2, 1, 1));
  set.add(SporadicFlow("ef", Path{0, 1}, 60, 2, 0, 600));
  set.add(SporadicFlow("be", Path{1, 0}, 60, 25, 0, 6000,
                       ServiceClass::kBestEffort));
  sim::SearchConfig scfg;
  scfg.random_runs = 16;
  const EfValidation v = validate_ef(set, {}, scfg);
  ASSERT_TRUE(v.analysis.converged);
  EXPECT_TRUE(v.sound);
  // The ingress term contributes: delta covers blocking at both nodes.
  EXPECT_GE(v.analysis.bounds[0].delta, 2 * (25 - 1));
}

/// Randomised sweep: EF flows with random AF/BE background stay sound.
class RandomEfValidation : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RandomEfValidation, Property3SoundUnderDiffServSimulation) {
  Rng rng(GetParam());
  model::RandomConfig rc;
  rc.nodes = 8;
  rc.flows = 5;
  rc.max_path = 4;
  rc.max_jitter = 4;
  rc.max_utilisation = 0.45;
  FlowSet base = model::make_random(rc, rng);

  // Demote a pseudo-random subset of flows to background classes.
  FlowSet set(base.network());
  const model::ServiceClass background[] = {
      ServiceClass::kAssured1, ServiceClass::kAssured3,
      ServiceClass::kBestEffort};
  bool any_ef = false;
  for (std::size_t i = 0; i < base.size(); ++i) {
    const SporadicFlow& f = base.flow(static_cast<FlowIndex>(i));
    if (rng.chance(0.5)) {
      set.add(f.with_class(background[i % 3]));
    } else {
      set.add(f);
      any_ef = true;
    }
  }
  if (!any_ef) {
    set.add(SporadicFlow("ef0", Path{0, 1}, 100, 2, 0, 1000));
  }

  sim::SearchConfig scfg;
  scfg.random_runs = 10;
  scfg.base_seed = GetParam() * 31 + 1;
  const EfValidation v = validate_ef(set, {}, scfg);
  EXPECT_TRUE(v.analysis.converged);
  EXPECT_TRUE(v.sound);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomEfValidation,
                         ::testing::Values(21, 22, 23, 24, 25, 26, 27, 28, 29,
                                           30, 31, 32));

}  // namespace
}  // namespace tfa::diffserv
