// Tests of the AF/BE class-level bounds under the Figure-3 router.
#include <gtest/gtest.h>

#include "base/rng.h"
#include "diffserv/discipline.h"
#include "diffserv/wfq_analysis.h"
#include "model/generators.h"
#include "sim/worst_case_search.h"

namespace tfa::diffserv {
namespace {

using model::FlowSet;
using model::Network;
using model::Path;
using model::ServiceClass;
using model::SporadicFlow;

TEST(WfqAnalysis, OnlyNonEfFlowsAreReported) {
  FlowSet set(Network(2, 1, 1));
  set.add(SporadicFlow("ef", Path{0, 1}, 50, 4, 0, 500));
  set.add(SporadicFlow("af", Path{0, 1}, 80, 6, 0, 800,
                       ServiceClass::kAssured1));
  const WfqResult r = analyze_wfq(set);
  ASSERT_EQ(r.bounds.size(), 1u);
  EXPECT_EQ(r.bounds[0].flow, 1);
  EXPECT_EQ(r.find(0), nullptr);
  EXPECT_FALSE(is_infinite(r.bounds[0].response));
}

TEST(WfqAnalysis, HigherWeightMeansTighterBound) {
  // Same traffic in AF1 (weight 4) vs BE (weight 1): the AF1 bound wins.
  auto bound_in = [](ServiceClass c) {
    FlowSet set(Network(2, 1, 1));
    set.add(SporadicFlow("probe", Path{0, 1}, 100, 6, 0, 100000, c));
    set.add(SporadicFlow("rival", Path{0, 1}, 100, 6, 0, 100000,
                         c == ServiceClass::kAssured1
                             ? ServiceClass::kBestEffort
                             : ServiceClass::kAssured1));
    const WfqResult r = analyze_wfq(set);
    return r.find(0)->response;
  };
  EXPECT_LT(bound_in(ServiceClass::kAssured1),
            bound_in(ServiceClass::kBestEffort));
}

TEST(WfqAnalysis, EfLoadInflatesEveryClassBound) {
  auto bound_with_ef = [](Duration ef_cost) {
    FlowSet set(Network(2, 1, 1));
    set.add(SporadicFlow("af", Path{0, 1}, 120, 6, 0, 100000,
                         ServiceClass::kAssured2));
    set.add(SporadicFlow("voice", Path{0, 1}, 60, ef_cost, 0, 100000));
    return analyze_wfq(set).find(0)->response;
  };
  Duration prev = bound_with_ef(2);
  for (const Duration c : {4, 8, 16}) {
    const Duration next = bound_with_ef(c);
    EXPECT_GT(next, prev);
    prev = next;
  }
}

TEST(WfqAnalysis, DivergesWhenShareIsOversubscribed) {
  // BE (weight 1 of 11) cannot carry 30% of the link.
  FlowSet set(Network(1, 1, 1));
  set.add(SporadicFlow("be", Path{0}, 10, 3, 0, 100000,
                       ServiceClass::kBestEffort));
  const WfqResult r = analyze_wfq(set);
  EXPECT_TRUE(is_infinite(r.bounds[0].response));
}

void expect_wfq_sound(const FlowSet& set, std::uint64_t seed) {
  const WfqResult r = analyze_wfq(set);
  sim::SearchConfig scfg;
  scfg.random_runs = 12;
  scfg.base_seed = seed;
  scfg.discipline = make_diffserv;
  const sim::SearchOutcome obs = sim::find_worst_case(set, scfg);
  for (const WfqFlowBound& b : r.bounds) {
    if (is_infinite(b.response)) continue;
    EXPECT_LE(obs.stats[static_cast<std::size_t>(b.flow)].worst, b.response)
        << "WFQ bound violated for "
        << set.flow(b.flow).name();
  }
}

TEST(WfqAnalysis, SoundAgainstRouterSimulationMixedSet) {
  FlowSet set(Network(4, 1, 2));
  set.add(SporadicFlow("voice", Path{0, 1, 2}, 80, 4, 2, 400));
  set.add(SporadicFlow("erp", Path{0, 1, 2, 3}, 120, 8, 0, 100000,
                       ServiceClass::kAssured1));
  set.add(SporadicFlow("video", Path{3, 1, 2}, 100, 10, 0, 100000,
                       ServiceClass::kAssured3));
  set.add(SporadicFlow("backup", Path{0, 1, 3}, 300, 14, 0, 100000,
                       ServiceClass::kBestEffort));
  expect_wfq_sound(set, 11);
}

/// Random mixed-class sweep against the DiffServ router simulation.
class RandomWfq : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RandomWfq, BoundsDominateSimulation) {
  Rng rng(GetParam());
  model::RandomConfig rc;
  rc.nodes = 7;
  rc.flows = 5;
  rc.max_path = 3;
  rc.max_jitter = 4;
  rc.max_utilisation = 0.35;  // leave room for the weighted shares
  const FlowSet base = model::make_random(rc, rng);

  FlowSet set(base.network());
  const ServiceClass classes[] = {
      ServiceClass::kExpedited, ServiceClass::kAssured1,
      ServiceClass::kAssured2, ServiceClass::kBestEffort};
  for (std::size_t i = 0; i < base.size(); ++i)
    set.add(base.flow(static_cast<FlowIndex>(i))
                .with_class(classes[rng.uniform(0, 3)]));
  expect_wfq_sound(set, GetParam() * 5 + 3);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomWfq,
                         ::testing::Values(91, 92, 93, 94, 95, 96, 97, 98, 99,
                                           100));

}  // namespace
}  // namespace tfa::diffserv
