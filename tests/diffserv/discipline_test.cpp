// Tests of the DiffServ scheduler: strict EF priority, FIFO within EF,
// weighted sharing across AF/BE (paper Figure 3).
#include <gtest/gtest.h>

#include "diffserv/discipline.h"
#include "diffserv/dscp.h"

namespace tfa::diffserv {
namespace {

sim::Packet make(FlowIndex flow, model::ServiceClass c, Duration cost = 4) {
  sim::Packet p;
  p.flow = flow;
  p.service_class = c;
  p.cost = cost;
  return p;
}

TEST(Dscp, RoundTripsEveryClass) {
  for (const auto c :
       {model::ServiceClass::kExpedited, model::ServiceClass::kAssured1,
        model::ServiceClass::kAssured2, model::ServiceClass::kAssured3,
        model::ServiceClass::kAssured4, model::ServiceClass::kBestEffort})
    EXPECT_EQ(class_of(dscp_of(c)), c);
  EXPECT_EQ(dscp_of(model::ServiceClass::kExpedited), Dscp::kEf);
}

TEST(DiffServDiscipline, EfAlwaysBeatsLowerClasses) {
  DiffServDiscipline d;
  d.enqueue(make(0, model::ServiceClass::kBestEffort), 0);
  d.enqueue(make(1, model::ServiceClass::kAssured1), 0);
  d.enqueue(make(2, model::ServiceClass::kExpedited), 0);
  d.enqueue(make(3, model::ServiceClass::kExpedited), 0);
  EXPECT_EQ(d.size(), 4u);
  EXPECT_EQ(d.ef_backlog(), 2u);
  EXPECT_EQ(d.dequeue()->flow, 2);  // EF first, FIFO within EF
  EXPECT_EQ(d.dequeue()->flow, 3);
  // Only then the WFQ aggregate.
  const auto next = d.dequeue();
  ASSERT_TRUE(next.has_value());
  EXPECT_NE(next->service_class, model::ServiceClass::kExpedited);
}

TEST(DiffServDiscipline, FifoWithinEf) {
  DiffServDiscipline d;
  for (FlowIndex k = 0; k < 6; ++k)
    d.enqueue(make(k, model::ServiceClass::kExpedited), k);
  for (FlowIndex k = 0; k < 6; ++k) EXPECT_EQ(d.dequeue()->flow, k);
  EXPECT_TRUE(d.empty());
}

TEST(DiffServDiscipline, EmptyDequeueReturnsNothing) {
  DiffServDiscipline d;
  EXPECT_FALSE(d.dequeue().has_value());
  EXPECT_TRUE(d.empty());
  EXPECT_EQ(d.size(), 0u);
}

TEST(DiffServDiscipline, WfqSharesFollowWeights) {
  // Default weights AF1:4, BE:1 — with a long backlog of equal-cost
  // packets, AF1 should drain roughly 4x faster.
  DiffServDiscipline d;
  for (FlowIndex k = 0; k < 40; ++k) {
    d.enqueue(make(100 + k, model::ServiceClass::kAssured1), 0);
    d.enqueue(make(200 + k, model::ServiceClass::kBestEffort), 0);
  }
  int af1_in_first_20 = 0;
  for (int k = 0; k < 20; ++k) {
    const auto p = d.dequeue();
    ASSERT_TRUE(p.has_value());
    if (p->service_class == model::ServiceClass::kAssured1) ++af1_in_first_20;
  }
  // Ideal share: 16 of 20.  Allow slack for SFQ quantisation.
  EXPECT_GE(af1_in_first_20, 13);
  EXPECT_LE(af1_in_first_20, 18);
}

TEST(DiffServDiscipline, HeavierPacketsGetProportionallyFewerSlots) {
  // Equal weights, BE packets twice the cost: AF4 (weight 1) with cost 4
  // vs BE (weight 1) with cost 8 — AF4 should send ~2 packets per BE.
  WfqWeights w;
  w.weight = {1, 1, 1, 1, 1};
  DiffServDiscipline d(w);
  for (FlowIndex k = 0; k < 30; ++k) {
    d.enqueue(make(100 + k, model::ServiceClass::kAssured4, 4), 0);
    d.enqueue(make(200 + k, model::ServiceClass::kBestEffort, 8), 0);
  }
  int af4_in_first_21 = 0;
  for (int k = 0; k < 21; ++k) {
    const auto p = d.dequeue();
    ASSERT_TRUE(p.has_value());
    if (p->service_class == model::ServiceClass::kAssured4) ++af4_in_first_21;
  }
  EXPECT_GE(af4_in_first_21, 12);  // ~14 expected
  EXPECT_LE(af4_in_first_21, 16);
}

TEST(DiffServDiscipline, StarvationOfBestEffortUnderEfLoadIsTotal) {
  // The paper's model: EF is served as long as it is not empty.
  DiffServDiscipline d;
  d.enqueue(make(0, model::ServiceClass::kBestEffort), 0);
  for (FlowIndex k = 1; k <= 10; ++k)
    d.enqueue(make(k, model::ServiceClass::kExpedited), k);
  for (FlowIndex k = 1; k <= 10; ++k)
    EXPECT_EQ(d.dequeue()->service_class, model::ServiceClass::kExpedited);
  EXPECT_EQ(d.dequeue()->flow, 0);  // BE only after EF drains
}

}  // namespace
}  // namespace tfa::diffserv
