// Tests of the strict-priority discipline.
#include <gtest/gtest.h>

#include "diffserv/strict_priority.h"

namespace tfa::diffserv {
namespace {

sim::Packet make(FlowIndex flow, model::ServiceClass c) {
  sim::Packet p;
  p.flow = flow;
  p.service_class = c;
  p.cost = 4;
  return p;
}

TEST(StrictPriority, RankOrderIsEfDownToBe) {
  EXPECT_LT(StrictPriorityDiscipline::rank(model::ServiceClass::kExpedited),
            StrictPriorityDiscipline::rank(model::ServiceClass::kAssured1));
  EXPECT_LT(StrictPriorityDiscipline::rank(model::ServiceClass::kAssured1),
            StrictPriorityDiscipline::rank(model::ServiceClass::kAssured2));
  EXPECT_LT(StrictPriorityDiscipline::rank(model::ServiceClass::kAssured4),
            StrictPriorityDiscipline::rank(model::ServiceClass::kBestEffort));
}

TEST(StrictPriority, DequeuesInClassOrder) {
  StrictPriorityDiscipline d;
  d.enqueue(make(0, model::ServiceClass::kBestEffort), 0);
  d.enqueue(make(1, model::ServiceClass::kAssured3), 0);
  d.enqueue(make(2, model::ServiceClass::kExpedited), 0);
  d.enqueue(make(3, model::ServiceClass::kAssured1), 0);
  EXPECT_EQ(d.dequeue()->flow, 2);  // EF
  EXPECT_EQ(d.dequeue()->flow, 3);  // AF1
  EXPECT_EQ(d.dequeue()->flow, 1);  // AF3
  EXPECT_EQ(d.dequeue()->flow, 0);  // BE
  EXPECT_FALSE(d.dequeue().has_value());
}

TEST(StrictPriority, FifoWithinEachClass) {
  StrictPriorityDiscipline d;
  for (FlowIndex k = 0; k < 4; ++k)
    d.enqueue(make(k, model::ServiceClass::kAssured2), k);
  for (FlowIndex k = 0; k < 4; ++k) EXPECT_EQ(d.dequeue()->flow, k);
}

TEST(StrictPriority, SizeCountsAllClasses) {
  StrictPriorityDiscipline d;
  EXPECT_TRUE(d.empty());
  d.enqueue(make(0, model::ServiceClass::kExpedited), 0);
  d.enqueue(make(1, model::ServiceClass::kBestEffort), 0);
  EXPECT_EQ(d.size(), 2u);
  EXPECT_FALSE(d.empty());
  (void)d.dequeue();
  EXPECT_EQ(d.size(), 1u);
}

}  // namespace
}  // namespace tfa::diffserv
