// Tests of the ingress token-bucket conditioner.
#include <gtest/gtest.h>

#include "diffserv/token_bucket.h"

namespace tfa::diffserv {
namespace {

TEST(TokenBucket, StartsFull) {
  TokenBucket tb(/*tokens_per_period=*/1, /*period=*/10, /*burst=*/5);
  EXPECT_EQ(tb.available(0), 5);
  EXPECT_TRUE(tb.conforms(0, 5));
  EXPECT_FALSE(tb.conforms(0, 6));
}

TEST(TokenBucket, RefillsAtRate) {
  TokenBucket tb(1, 10, 5);
  tb.consume(0, 5);
  EXPECT_EQ(tb.available(0), 0);
  EXPECT_EQ(tb.available(9), 0);
  EXPECT_EQ(tb.available(10), 1);
  EXPECT_EQ(tb.available(35), 3);
}

TEST(TokenBucket, CapsAtBurst) {
  TokenBucket tb(1, 10, 5);
  tb.consume(0, 1);
  EXPECT_EQ(tb.available(1000), 5);
}

TEST(TokenBucket, NextConformanceWhenAlreadyConformant) {
  TokenBucket tb(1, 10, 5);
  EXPECT_EQ(tb.next_conformance(7, 3), 7);
}

TEST(TokenBucket, NextConformancePredictsRefill) {
  TokenBucket tb(1, 10, 5);
  tb.consume(0, 5);
  // Needs 2 tokens: they arrive at t = 20.
  const Time t = tb.next_conformance(0, 2);
  EXPECT_EQ(t, 20);
  EXPECT_TRUE(tb.conforms(t, 2));
  EXPECT_FALSE(tb.conforms(t - 1, 2));
}

TEST(TokenBucket, FractionalRateAccumulatesAcrossQueries) {
  TokenBucket tb(/*tokens_per_period=*/3, /*period=*/7, /*burst=*/100);
  tb.consume(0, 100);
  // After 14 ticks: 6 tokens.
  EXPECT_EQ(tb.available(14), 6);
  tb.consume(14, 6);
  // Remainder carries: at t=20 (6 ticks later within a period) still 0,
  // at t=21 a full period since 14 has elapsed: 3 tokens.
  EXPECT_EQ(tb.available(20), 0);
  EXPECT_EQ(tb.available(21), 3);
}

TEST(TokenBucket, ConsumeThenConformSequence) {
  TokenBucket tb(2, 5, 10);
  Time now = 0;
  for (int burst = 0; burst < 4; ++burst) {
    now = tb.next_conformance(now, 4);
    tb.consume(now, 4);
  }
  // 16 tokens consumed, 10 initial: 6 must have been earned, needing at
  // least 3 periods: final conformance no earlier than t = 15.
  EXPECT_GE(now, 15);
}

TEST(TokenBucketDeathTest, RejectsOverdraw) {
  TokenBucket tb(1, 10, 5);
  EXPECT_DEATH(tb.consume(0, 6), "precondition");
}

}  // namespace
}  // namespace tfa::diffserv
