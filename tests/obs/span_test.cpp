// Tests of the scoped span tracer (obs/span.h): deterministic timestamps
// via clock injection, nesting depth, no-op handles, idempotent end(),
// and a Chrome trace-event export that parses as strict JSON.
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <utility>

#include "obs/json.h"
#include "obs/span.h"
#include "obs/telemetry.h"

namespace tfa::obs {
namespace {

/// A counter clock: every read advances by 1000 ns, so spans get
/// bit-reproducible timestamps and non-zero durations.
Tracer counter_tracer() {
  auto t = std::make_shared<std::int64_t>(0);
  return Tracer([t] { return (*t += 1000); });
}

TEST(Span, RecordsNameDepthAndDurationFromInjectedClock) {
  Tracer tracer = counter_tracer();
  {
    Span outer = tracer.span("outer");
    {
      Span inner = tracer.span("inner");
    }
  }
  const auto& ev = tracer.events();
  ASSERT_EQ(ev.size(), 2u);
  EXPECT_EQ(ev[0].name, "outer");
  EXPECT_EQ(ev[0].depth, 0u);
  EXPECT_EQ(ev[1].name, "inner");
  EXPECT_EQ(ev[1].depth, 1u);
  // Clock reads: outer open (1000), inner open (2000), inner close
  // (3000), outer close (4000).
  EXPECT_EQ(ev[0].start_ns, 1000);
  EXPECT_EQ(ev[0].dur_ns, 3000);
  EXPECT_EQ(ev[1].start_ns, 2000);
  EXPECT_EQ(ev[1].dur_ns, 1000);
}

TEST(Span, EndIsIdempotentAndClosesEarly) {
  Tracer tracer = counter_tracer();
  Span s = tracer.span("phase");
  s.end();
  const std::int64_t dur = tracer.events()[0].dur_ns;
  EXPECT_GE(dur, 0);
  s.end();  // second end() must not touch the record
  EXPECT_EQ(tracer.events()[0].dur_ns, dur);
}

TEST(Span, MovedFromHandleIsNoOp) {
  Tracer tracer = counter_tracer();
  Span a = tracer.span("only");
  Span b = std::move(a);
  a.end();  // moved-from: no effect
  EXPECT_EQ(tracer.events()[0].dur_ns, -1);  // still open, held by b
  b.end();
  EXPECT_GE(tracer.events()[0].dur_ns, 0);
}

TEST(Span, NullTelemetryHelperIsNoOp) {
  // The optional-instrumentation entry point: a nullptr sink yields a
  // Span that does nothing and destructs cleanly.
  Span s = span(nullptr, "unused");
  s.end();
  SUCCEED();
}

TEST(Span, TelemetryHelperRecordsIntoSink) {
  Telemetry tel;
  {
    Span s = span(&tel, "via_helper");
  }
  ASSERT_EQ(tel.trace.events().size(), 1u);
  EXPECT_EQ(tel.trace.events()[0].name, "via_helper");
}

TEST(Span, DepthRecoversAfterSiblings) {
  Tracer tracer = counter_tracer();
  {
    Span a = tracer.span("a");
    { Span b = tracer.span("b"); }
    { Span c = tracer.span("c"); }
  }
  Span d = tracer.span("d");
  d.end();
  const auto& ev = tracer.events();
  ASSERT_EQ(ev.size(), 4u);
  EXPECT_EQ(ev[1].depth, 1u);  // b under a
  EXPECT_EQ(ev[2].depth, 1u);  // c under a, sibling of b
  EXPECT_EQ(ev[3].depth, 0u);  // d top-level again
}

TEST(Tracer, ChromeTraceJsonParsesAndIsRelativeToFirstSpan) {
  Tracer tracer = counter_tracer();
  {
    Span outer = tracer.span("outer");
    Span inner = tracer.span("inner, \"quoted\"");
  }
  Span open_span = tracer.span("still_open");  // must be skipped

  const std::string json = tracer.chrome_trace_json();
  const auto doc = json_parse(json);
  ASSERT_TRUE(doc.has_value());
  const JsonValue* events = doc->find("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_TRUE(events->is_array());
  ASSERT_EQ(events->array.size(), 2u);  // the open span is not exported

  const JsonValue& first = events->array[0];
  EXPECT_EQ(first.find("name")->string, "outer");
  EXPECT_EQ(first.find("ph")->string, "X");
  EXPECT_EQ(first.find("ts")->number, 0.0);  // relative to first span
  const JsonValue& second = events->array[1];
  EXPECT_EQ(second.find("name")->string, "inner, \"quoted\"");
  EXPECT_GT(second.find("ts")->number, 0.0);
  open_span.end();
}

}  // namespace
}  // namespace tfa::obs
