// Tests of the structured event log (obs/eventlog.h): the fixed line
// schema, severity filtering, debug/info sampling, ring eviction, the
// live sink, and concurrent recording.
#include <gtest/gtest.h>

#include <cstdint>
#include <functional>
#include <memory>
#include <sstream>
#include <thread>
#include <vector>

#include "obs/eventlog.h"

namespace tfa::obs {
namespace {

/// Deterministic clock: 1, 2, 3, ... per call.
std::function<std::int64_t()> counting_clock() {
  auto t = std::make_shared<std::int64_t>(0);
  return [t] { return ++*t; };
}

EventLogConfig test_config() {
  EventLogConfig cfg;
  cfg.clock = counting_clock();
  return cfg;
}

TEST(EventLog, LineSchemaIsByteExact) {
  EventLog log(test_config());
  EXPECT_TRUE(log.record(EventSeverity::kInfo, "service.accept",
                         {{"conn", "1"}}));
  EXPECT_TRUE(log.record(
      EventSeverity::kWarn, "service.deadline_miss",
      {{"seq", "9"}, {"op", "\"analyze\""}, {"latency_ns", "2000000"}}));
  EXPECT_TRUE(log.record(EventSeverity::kError, "service.fault", {}));
  const std::vector<std::string> lines = log.lines();
  ASSERT_EQ(lines.size(), 3u);
  EXPECT_EQ(lines[0],
            R"({"ts":1,"severity":"info","event":"service.accept","conn":1})");
  EXPECT_EQ(lines[1],
            R"({"ts":2,"severity":"warn","event":"service.deadline_miss",)"
            R"("seq":9,"op":"analyze","latency_ns":2000000})");
  EXPECT_EQ(lines[2], R"({"ts":3,"severity":"error","event":"service.fault"})");
  EXPECT_EQ(log.dump(), lines[0] + "\n" + lines[1] + "\n" + lines[2] + "\n");
}

TEST(EventLog, SeverityNamesRoundTrip) {
  for (const EventSeverity sev :
       {EventSeverity::kDebug, EventSeverity::kInfo, EventSeverity::kWarn,
        EventSeverity::kError}) {
    const auto back = severity_from_string(to_string(sev));
    ASSERT_TRUE(back.has_value()) << to_string(sev);
    EXPECT_EQ(*back, sev);
  }
  EXPECT_FALSE(severity_from_string("loud").has_value());
  EXPECT_FALSE(severity_from_string("").has_value());
}

TEST(EventLog, MinSeverityFilters) {
  EventLogConfig cfg = test_config();
  cfg.min_severity = EventSeverity::kWarn;
  EventLog log(cfg);
  EXPECT_FALSE(log.record(EventSeverity::kDebug, "e", {}));
  EXPECT_FALSE(log.record(EventSeverity::kInfo, "e", {}));
  EXPECT_TRUE(log.record(EventSeverity::kWarn, "e", {}));
  EXPECT_TRUE(log.record(EventSeverity::kError, "e", {}));
  EXPECT_EQ(log.recorded(), 2u);
  EXPECT_EQ(log.filtered(), 2u);
}

TEST(EventLog, SamplingKeepsEveryNthLowSeverityEvent) {
  EventLogConfig cfg = test_config();
  cfg.sample_every = 3;
  EventLog log(cfg);
  std::size_t kept_info = 0;
  for (int i = 0; i < 9; ++i)
    if (log.record(EventSeverity::kInfo, "e", {})) ++kept_info;
  EXPECT_EQ(kept_info, 3u);
  // Warn/error are never sampled away.
  for (int i = 0; i < 5; ++i)
    EXPECT_TRUE(log.record(EventSeverity::kWarn, "e", {}));
  EXPECT_EQ(log.recorded(), 8u);
}

TEST(EventLog, RingEvictsOldestAndCounts) {
  EventLogConfig cfg = test_config();
  cfg.capacity = 2;
  EventLog log(cfg);
  (void)log.record(EventSeverity::kInfo, "first", {});
  (void)log.record(EventSeverity::kInfo, "second", {});
  (void)log.record(EventSeverity::kInfo, "third", {});
  const std::vector<std::string> lines = log.lines();
  ASSERT_EQ(lines.size(), 2u);
  EXPECT_NE(lines[0].find("\"second\""), std::string::npos);
  EXPECT_NE(lines[1].find("\"third\""), std::string::npos);
  EXPECT_EQ(log.evicted(), 1u);
  EXPECT_EQ(log.recorded(), 3u);
}

TEST(EventLog, SinkReceivesKeptLinesOnly) {
  EventLogConfig cfg = test_config();
  cfg.min_severity = EventSeverity::kInfo;
  EventLog log(cfg);
  std::ostringstream sink;
  log.set_sink(&sink);
  (void)log.record(EventSeverity::kDebug, "dropped", {});
  (void)log.record(EventSeverity::kInfo, "kept", {{"k", "7"}});
  EXPECT_EQ(sink.str(),
            R"({"ts":1,"severity":"info","event":"kept","k":7})"
            "\n");
}

/// The log is the one obs component shared across threads; hammer it and
/// check nothing is lost or torn.
TEST(EventLog, ConcurrentRecordingLosesNothing) {
  EventLog log(test_config());
  constexpr int kThreads = 4;
  constexpr int kPerThread = 250;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t)
    threads.emplace_back([&log, t] {
      for (int i = 0; i < kPerThread; ++i)
        (void)log.record(EventSeverity::kInfo, "worker",
                         {{"thread", std::to_string(t)}});
    });
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(log.recorded(), static_cast<std::uint64_t>(kThreads * kPerThread));
  for (const std::string& line : log.lines()) {
    EXPECT_EQ(line.find("{\"ts\":"), 0u) << line;
    EXPECT_NE(line.find("\"event\":\"worker\""), std::string::npos) << line;
  }
}

}  // namespace
}  // namespace tfa::obs
