// The determinism contract of the observability layer, end to end: the
// deterministic metric kinds (counters, histograms, series) and the span
// tree shape must be bit-identical whatever Config::workers is, on both
// the paper example and a generated workload (docs/observability.md).
#include <gtest/gtest.h>

#include <cstddef>
#include <string>
#include <utility>
#include <vector>

#include "base/rng.h"
#include "model/generators.h"
#include "model/paper_example.h"
#include "obs/json.h"
#include "obs/telemetry.h"
#include "trajectory/analysis.h"

namespace tfa {
namespace {

model::FlowSet generated_set() {
  Rng rng(7);
  model::RandomConfig cfg;
  cfg.nodes = 48;
  cfg.flows = 200;
  cfg.min_path = 2;
  cfg.max_path = 4;
  cfg.max_jitter = 8;
  cfg.max_utilisation = 0.5;
  return model::make_random(cfg, rng);
}

struct AnalysisRun {
  obs::Telemetry telemetry;
  trajectory::Result result;
};

AnalysisRun analyze_with_workers(const model::FlowSet& set, std::size_t workers) {
  AnalysisRun run;
  trajectory::Config cfg;
  cfg.workers = workers;
  run.result = trajectory::analyze(set, cfg, &run.telemetry);
  return run;
}

/// The deterministic part of a trace: the (name, depth) sequence in begin
/// order.  Timestamps are host noise and deliberately excluded.
std::vector<std::pair<std::string, std::size_t>> span_shape(
    const obs::Tracer& tracer) {
  std::vector<std::pair<std::string, std::size_t>> shape;
  for (const auto& e : tracer.events()) shape.emplace_back(e.name, e.depth);
  return shape;
}

void expect_worker_invariant(const model::FlowSet& set) {
  AnalysisRun one = analyze_with_workers(set, 1);
  AnalysisRun four = analyze_with_workers(set, 4);

  ASSERT_EQ(one.result.bounds.size(), four.result.bounds.size());
  for (std::size_t i = 0; i < one.result.bounds.size(); ++i)
    EXPECT_EQ(one.result.bounds[i].response, four.result.bounds[i].response);

  // Counters, histograms and series byte-identical across worker counts.
  EXPECT_EQ(one.telemetry.metrics.deterministic_json(),
            four.telemetry.metrics.deterministic_json());

  // Same span tree shape (timers inside the events differ, names and
  // nesting cannot).
  EXPECT_EQ(span_shape(one.telemetry.trace),
            span_shape(four.telemetry.trace));

  // Worker count does land in the (non-deterministic) gauge namespace.
  EXPECT_EQ(one.telemetry.metrics.gauge_value("trajectory.workers"), 1);
  EXPECT_EQ(four.telemetry.metrics.gauge_value("trajectory.workers"), 4);
}

TEST(TelemetryDeterminism, PaperExampleWorkerInvariant) {
  expect_worker_invariant(model::paper_example());
}

TEST(TelemetryDeterminism, GeneratedWorkloadWorkerInvariant) {
  expect_worker_invariant(generated_set());
}

TEST(TelemetryDeterminism, ConvergenceSeriesArePopulated) {
  const model::FlowSet set = generated_set();
  AnalysisRun run = analyze_with_workers(set, 1);
  const auto& series = run.telemetry.metrics.series();

  // Per-pass Jacobi telemetry: one entry per Smax pass in each series.
  const auto residual = series.find("trajectory.smax.residual");
  ASSERT_NE(residual, series.end());
  EXPECT_EQ(residual->second.size(), run.result.stats.smax_passes);
  // The final pass confirms the fixed point: residual 0, no changed rows.
  ASSERT_FALSE(residual->second.empty());
  EXPECT_EQ(residual->second.back(), 0);
  const auto changed = series.find("trajectory.smax.changed_rows");
  ASSERT_NE(changed, series.end());
  EXPECT_EQ(changed->second.back(), 0);

  // One busy-period iterate series per analysed flow, keyed by flow name.
  // The engine runs on the normalised set, where jitter splitting can
  // create more flows than the input had — never fewer.
  std::size_t flow_series = 0;
  for (const auto& [name, values] : series)
    if (name.starts_with("trajectory.flow.") &&
        name.ends_with(".busy_period"))
      ++flow_series;
  EXPECT_GE(flow_series, set.size());
}

TEST(TelemetryDeterminism, ExportsRoundTripThroughStrictJson) {
  AnalysisRun run = analyze_with_workers(model::paper_example(), 1);
  const auto metrics = obs::json_parse(run.telemetry.metrics.to_json());
  ASSERT_TRUE(metrics.has_value());
  EXPECT_NE(metrics->find("counters"), nullptr);
  EXPECT_NE(metrics->find("series"), nullptr);

  const auto trace =
      obs::json_parse(run.telemetry.trace.chrome_trace_json());
  ASSERT_TRUE(trace.has_value());
  const obs::JsonValue* events = trace->find("traceEvents");
  ASSERT_NE(events, nullptr);
  EXPECT_FALSE(events->array.empty());
}

}  // namespace
}  // namespace tfa
