// Tests of the deterministic metric registry (obs/metrics.h): the five
// metric kinds, their merge semantics, the series capacity guard, and the
// JSON dump (checked by round-tripping through obs/json.h).
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "obs/json.h"
#include "obs/metrics.h"

namespace tfa::obs {
namespace {

TEST(MetricRegistry, CountersAccumulateAndReadBack) {
  MetricRegistry r;
  r.counter("a.passes") += 3;
  r.counter("a.passes") += 2;
  EXPECT_EQ(r.counter_value("a.passes"), 5);
  EXPECT_EQ(r.counter_value("never.touched"), 0);
  // Lookup without creation: the miss above must not materialise a key.
  EXPECT_EQ(r.counters().size(), 1u);
}

TEST(MetricRegistry, TimersAndGaugesAreSeparateNamespaces) {
  MetricRegistry r;
  r.counter("x") += 1;
  r.timer("x") += 100;
  r.gauge("x") = 7;
  EXPECT_EQ(r.counter_value("x"), 1);
  EXPECT_EQ(r.timer_value("x"), 100);
  EXPECT_EQ(r.gauge_value("x"), 7);
}

TEST(MetricRegistry, HistogramBucketsBySmallestBound) {
  MetricRegistry r;
  Histogram& h = r.histogram("depth", {1, 4, 16});
  h.record(0);   // <= 1
  h.record(1);   // <= 1
  h.record(4);   // <= 4
  h.record(5);   // <= 16
  h.record(17);  // overflow
  EXPECT_EQ(h.counts, (std::vector<std::int64_t>{2, 1, 1}));
  EXPECT_EQ(h.overflow, 1);
  EXPECT_EQ(h.count, 5);
  EXPECT_EQ(h.sum, 0 + 1 + 4 + 5 + 17);
}

TEST(MetricRegistry, MergeAddsCountersTimersAndHistograms) {
  MetricRegistry a, b;
  a.counter("c") += 2;
  b.counter("c") += 3;
  b.counter("only_b") += 1;
  a.timer("t") += 10;
  b.timer("t") += 5;
  a.histogram("h", {8}).record(4);
  b.histogram("h", {8}).record(100);

  a.merge(b);
  EXPECT_EQ(a.counter_value("c"), 5);
  EXPECT_EQ(a.counter_value("only_b"), 1);
  EXPECT_EQ(a.timer_value("t"), 15);
  const Histogram& h = a.histogram("h", {8});
  EXPECT_EQ(h.counts, (std::vector<std::int64_t>{1}));
  EXPECT_EQ(h.overflow, 1);
  EXPECT_EQ(h.count, 2);
  EXPECT_EQ(h.sum, 104);
}

TEST(MetricRegistry, MergeTakesGaugeMaximum) {
  MetricRegistry a, b;
  a.gauge("workers") = 4;
  b.gauge("workers") = 2;
  b.gauge("horizon") = 9;
  a.merge(b);
  EXPECT_EQ(a.gauge_value("workers"), 4);
  EXPECT_EQ(a.gauge_value("horizon"), 9);
}

TEST(MetricRegistry, MergeConcatenatesSeriesInOrder) {
  MetricRegistry a, b;
  a.append_series("residual", 10);
  a.append_series("residual", 4);
  b.append_series("residual", 0);
  a.merge(b);
  EXPECT_EQ(a.series().at("residual"),
            (std::vector<std::int64_t>{10, 4, 0}));
}

TEST(MetricRegistry, SeriesCapacityDropsAndTallies) {
  MetricRegistry r;
  r.set_series_capacity(2);
  for (std::int64_t v = 0; v < 5; ++v) r.append_series("s", v);
  EXPECT_EQ(r.series().at("s"), (std::vector<std::int64_t>{0, 1}));
  EXPECT_EQ(r.counter_value("obs.series_dropped"), 3);
}

TEST(MetricRegistry, ToJsonRoundTripsAndOrdersKeys) {
  MetricRegistry r;
  r.counter("b.second") += 2;
  r.counter("a.first") += 1;
  r.timer("wall") += 42;
  r.gauge("level") = 3;
  r.histogram("h", {1, 2}).record(2);
  r.append_series("s", -7);

  const std::string json = r.to_json();
  const auto doc = json_parse(json);
  ASSERT_TRUE(doc.has_value());
  ASSERT_TRUE(doc->is_object());

  const JsonValue* counters = doc->find("counters");
  ASSERT_NE(counters, nullptr);
  ASSERT_EQ(counters->object.size(), 2u);
  // std::map iteration → lexicographic key order in the dump.
  EXPECT_EQ(counters->object[0].first, "a.first");
  EXPECT_EQ(counters->object[1].first, "b.second");
  EXPECT_EQ(counters->object[1].second.number, 2.0);

  const JsonValue* hist = doc->find("histograms");
  ASSERT_NE(hist, nullptr);
  const JsonValue* h = hist->find("h");
  ASSERT_NE(h, nullptr);
  const JsonValue* counts = h->find("counts");
  ASSERT_NE(counts, nullptr);
  ASSERT_EQ(counts->array.size(), 2u);
  EXPECT_EQ(counts->array[1].number, 1.0);

  const JsonValue* series = doc->find("series");
  ASSERT_NE(series, nullptr);
  const JsonValue* s = series->find("s");
  ASSERT_NE(s, nullptr);
  ASSERT_EQ(s->array.size(), 1u);
  EXPECT_EQ(s->array[0].number, -7.0);
}

TEST(MetricRegistry, EqualContentDumpsByteIdenticalJson) {
  MetricRegistry a, b;
  // Same content inserted in different orders.
  a.counter("x") += 1;
  a.counter("y") += 2;
  b.counter("y") += 2;
  b.counter("x") += 1;
  EXPECT_EQ(a.to_json(), b.to_json());
  EXPECT_EQ(a.deterministic_json(), b.deterministic_json());
}

TEST(MetricRegistry, DeterministicJsonExcludesTimersAndGauges) {
  MetricRegistry r;
  r.counter("c") += 1;
  r.timer("host_time") += 12345;
  r.gauge("workers") = 8;
  const std::string d = r.deterministic_json();
  EXPECT_EQ(d.find("host_time"), std::string::npos);
  EXPECT_EQ(d.find("workers"), std::string::npos);
  const auto doc = json_parse(d);
  ASSERT_TRUE(doc.has_value());
  ASSERT_NE(doc->find("counters"), nullptr);
}

TEST(JsonParser, RejectsTrailingGarbageAndBadSyntax) {
  EXPECT_FALSE(json_parse("{\"a\":1} x").has_value());
  EXPECT_FALSE(json_parse("{\"a\":}").has_value());
  EXPECT_FALSE(json_parse("[1,]").has_value());
  EXPECT_TRUE(json_parse("{\"a\":[1,2,{\"b\":true}]}").has_value());
}

TEST(JsonEscape, EscapesQuotesBackslashesAndControls) {
  EXPECT_EQ(json_escape("a\"b\\c"), "a\\\"b\\\\c");
  EXPECT_EQ(json_escape("\n"), "\\n");
  EXPECT_EQ(json_escape(std::string(1, '\x01')), "\\u0001");
}

}  // namespace
}  // namespace tfa::obs
