// Golden tests of the Prometheus text exposition (obs/exposition.h):
// name sanitisation, the byte-exact block layout per metric kind, the
// deterministic-only restriction the `statsz` wire op serves, and the
// nearest-rank bucket quantiles.
#include <gtest/gtest.h>

#include <string>

#include "obs/exposition.h"
#include "obs/metrics.h"

namespace tfa::obs {
namespace {

TEST(Exposition, NameSanitisation) {
  EXPECT_EQ(prometheus_name("service.net.requests"),
            "tfa_service_net_requests");
  EXPECT_EQ(prometheus_name("session.load-1.engine.smax_passes"),
            "tfa_session_load_1_engine_smax_passes");
  EXPECT_EQ(prometheus_name("already_valid:name"), "tfa_already_valid:name");
}

TEST(Exposition, FullViewIsByteExact) {
  MetricRegistry reg;
  reg.counter("svc.requests") += 3;
  reg.timer("svc.wall") += 1500;
  reg.gauge("svc.workers") = 4;
  Histogram& h = reg.histogram("svc.latency", {10, 100});
  h.record(5);
  h.record(50);
  h.record(5000);
  reg.append_series("svc.residual", 9);
  reg.append_series("svc.residual", 4);

  EXPECT_EQ(prometheus_text(reg),
            "# HELP tfa_svc_requests counter svc.requests (deterministic)\n"
            "# TYPE tfa_svc_requests counter\n"
            "tfa_svc_requests 3\n"
            "# HELP tfa_svc_wall timer ns svc.wall (host-dependent)\n"
            "# TYPE tfa_svc_wall counter\n"
            "tfa_svc_wall 1500\n"
            "# HELP tfa_svc_workers gauge svc.workers (host-dependent)\n"
            "# TYPE tfa_svc_workers gauge\n"
            "tfa_svc_workers 4\n"
            "# HELP tfa_svc_latency histogram svc.latency (deterministic)\n"
            "# TYPE tfa_svc_latency histogram\n"
            "tfa_svc_latency_bucket{le=\"10\"} 1\n"
            "tfa_svc_latency_bucket{le=\"100\"} 2\n"
            "tfa_svc_latency_bucket{le=\"+Inf\"} 3\n"
            "tfa_svc_latency_sum 5055\n"
            "tfa_svc_latency_count 3\n"
            "# HELP tfa_svc_latency_q nearest-rank quantiles of svc.latency "
            "(bucket upper bounds)\n"
            "# TYPE tfa_svc_latency_q gauge\n"
            "tfa_svc_latency_q{q=\"0.5\"} 100\n"
            "tfa_svc_latency_q{q=\"0.95\"} +Inf\n"
            "tfa_svc_latency_q{q=\"0.99\"} +Inf\n"
            "# HELP tfa_svc_residual_points series svc.residual "
            "(deterministic)\n"
            "# TYPE tfa_svc_residual_points counter\n"
            "tfa_svc_residual_points 2\n"
            "# TYPE tfa_svc_residual_last gauge\n"
            "tfa_svc_residual_last 4\n");
}

TEST(Exposition, DeterministicOnlySkipsTimersAndGauges) {
  MetricRegistry reg;
  reg.counter("c") += 1;
  reg.timer("t") += 1;
  reg.gauge("g") = 1;
  ExpositionOptions opt;
  opt.deterministic_only = true;
  const std::string text = prometheus_text(reg, opt);
  EXPECT_NE(text.find("tfa_c 1"), std::string::npos);
  EXPECT_EQ(text.find("tfa_t"), std::string::npos);
  EXPECT_EQ(text.find("tfa_g"), std::string::npos);
}

TEST(Exposition, QuantilesAreNearestRank) {
  MetricRegistry reg;
  Histogram& h = reg.histogram("lat", {1, 2, 3, 4});
  // 10 samples: 4 in le=1, 3 in le=2, 2 in le=3, 1 in le=4.
  for (int i = 0; i < 4; ++i) h.record(1);
  for (int i = 0; i < 3; ++i) h.record(2);
  for (int i = 0; i < 2; ++i) h.record(3);
  h.record(4);
  const std::string text = prometheus_text(reg);
  // rank(0.5) = 5 -> second bucket; rank(0.95) = 10 -> last bucket.
  EXPECT_NE(text.find("tfa_lat_q{q=\"0.5\"} 2\n"), std::string::npos) << text;
  EXPECT_NE(text.find("tfa_lat_q{q=\"0.95\"} 4\n"), std::string::npos) << text;
  EXPECT_NE(text.find("tfa_lat_q{q=\"0.99\"} 4\n"), std::string::npos) << text;
}

TEST(Exposition, EmptyRegistryAndEmptyHistogram) {
  MetricRegistry empty;
  EXPECT_EQ(prometheus_text(empty), "");
  MetricRegistry reg;
  (void)reg.histogram("lat", {1});
  const std::string text = prometheus_text(reg);
  EXPECT_NE(text.find("tfa_lat_count 0\n"), std::string::npos);
  EXPECT_NE(text.find("tfa_lat_q{q=\"0.5\"} 0\n"), std::string::npos);
}

}  // namespace
}  // namespace tfa::obs
