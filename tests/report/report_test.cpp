// Tests of the Markdown report generator.
#include <gtest/gtest.h>

#include "model/paper_example.h"
#include "report/report.h"

namespace tfa::report {
namespace {

using model::FlowSet;
using model::Network;
using model::Path;
using model::SporadicFlow;

TEST(Report, PaperExampleContainsAllSections) {
  ReportConfig cfg;
  cfg.title = "Paper example";
  const std::string doc = markdown_report(model::paper_example(), cfg);
  EXPECT_NE(doc.find("# Paper example"), std::string::npos);
  EXPECT_NE(doc.find("## Network"), std::string::npos);
  EXPECT_NE(doc.find("## Flows"), std::string::npos);
  EXPECT_NE(doc.find("## Certified bounds"), std::string::npos);
  EXPECT_NE(doc.find("## Bound decompositions"), std::string::npos);
  EXPECT_NE(doc.find("All analysed flows meet their deadlines"),
            std::string::npos);
  // Every flow appears with its bound.
  for (const char* name : {"tau1", "tau2", "tau3", "tau4", "tau5"})
    EXPECT_NE(doc.find(name), std::string::npos) << name;
  EXPECT_NE(doc.find("| tau1 | 40 | 31 |"), std::string::npos);
}

TEST(Report, MissesAreHighlighted) {
  FlowSet set(Network(1, 1, 1));
  set.add(SporadicFlow("a", Path{0}, 50, 4, 0, 100));
  set.add(SporadicFlow("tight", Path{0}, 50, 4, 0, 6));
  const std::string doc = markdown_report(set);
  EXPECT_NE(doc.find("**MISSES**"), std::string::npos);
  EXPECT_NE(doc.find("At least one flow misses"), std::string::npos);
}

TEST(Report, SimulationSectionOnRequest) {
  ReportConfig off;
  off.include_simulation = false;
  ReportConfig on;
  on.include_simulation = true;
  on.simulation_runs = 4;
  const FlowSet set = model::paper_example();
  EXPECT_EQ(markdown_report(set, off).find("Simulation cross-check"),
            std::string::npos);
  EXPECT_NE(markdown_report(set, on).find("Simulation cross-check"),
            std::string::npos);
}

TEST(Report, LinkOverridesListed) {
  Network net(3, 1, 2);
  net.set_link(0, 1, 5, 9);
  FlowSet set(net);
  set.add(SporadicFlow("f", Path{0, 1, 2}, 100, 4, 0, 200));
  const std::string doc = markdown_report(set);
  EXPECT_NE(doc.find("0 -> 1: [5, 9]"), std::string::npos);
}

TEST(Report, ExplanationsCanBeDisabled) {
  ReportConfig cfg;
  cfg.include_explanations = false;
  const std::string doc = markdown_report(model::paper_example(), cfg);
  EXPECT_EQ(doc.find("Bound decompositions"), std::string::npos);
}

TEST(Report, SplitFlowsAreCalledOut) {
  FlowSet set(Network(8, 1, 1));
  set.add(SporadicFlow("i", Path{1, 2, 3, 4, 5}, 100, 4, 0, 400));
  set.add(SporadicFlow("j", Path{0, 2, 6, 4, 7}, 100, 4, 0, 400));
  const std::string doc = markdown_report(set);
  EXPECT_NE(doc.find("Assumption-1 split"), std::string::npos);
}

}  // namespace
}  // namespace tfa::report
