// Experiment: buffer-provisioning plan latency and bound-vs-simulation
// tightness of the provision::BufferPlanner (src/provision/planner.h).
//
// Workload: a chain of N nodes carrying F flows over short contiguous
// sub-paths.  Every flow has release jitter J = 2.5 T (so the intrinsic
// token-bucket burst 1 + J/T is fractional) and declares a two-segment
// piecewise-linear arrival spec whose first segment is exactly tight
// against the sporadic staircase at the first jump — the case where the
// PWL bounds genuinely beat the single-affine ones.
//
// Two measurements:
//   * plan latency: `--rounds` timed provision::plan() calls over the
//     full set (mean / p50 / max microseconds);
//   * tightness: the simulator (adversarial-jitter release pattern,
//     worst-case links) observes per-node backlog peaks; for every node
//     the plan's bound must dominate the observation (soundness, in work
//     units and in packets) and the worst bound/observed ratio is the
//     tightness figure the committed BENCH_provision.json gates.
//
// Options (base/options.h):
//   --nodes N      chain length (default 10)
//   --flows N      flows over the chain (default 48)
//   --rounds N     timed plan() calls (default 40)
//   --json FILE    write the BENCH_provision.json record
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "base/options.h"
#include "base/table.h"
#include "model/flow_set.h"
#include "provision/planner.h"
#include "sim/network_sim.h"

namespace {

using namespace tfa;

/// The F flows of the chain, deterministic (no RNG: parameters cycle by
/// flow index).  Period T cycles through {40, 60, 80, 100}; jitter is
/// 2.5 T, so the intrinsic burst is the fractional 3.5 packets while the
/// declared spec caps the instantaneous burst at the integral 3.
model::FlowSet make_workload(std::int32_t nodes, std::int32_t flows) {
  model::FlowSet set(model::Network(nodes, /*lmin=*/1, /*lmax=*/1));
  for (std::int32_t i = 0; i < flows; ++i) {
    const Duration period = 40 + 20 * (i % 4);
    const Duration jitter = 2 * period + period / 2;  // 2.5 T, m0 = 3.
    const Duration cost = 1 + i % 2;
    const std::int32_t len = 2 + i % 3;
    const std::int32_t start = i % (nodes - len + 1);
    std::vector<NodeId> route;
    for (std::int32_t k = 0; k < len; ++k) route.push_back(start + k);
    model::SporadicFlow f("f" + std::to_string(i), model::Path(route), period,
                          cost, jitter, /*deadline=*/1'000'000);
    // Segment 1 is exactly tight at the staircase's first jump
    // t1 = m0 T - J = T/2: 3 + (2/T)(T/2) = 4.  Segment 2 relaxes the
    // rate towards the intrinsic 1/T with one extra packet of slack.
    f = f.with_arrival({{/*burst=*/3, /*rate_num=*/2, /*rate_den=*/period},
                        {/*burst=*/4, /*rate_num=*/4,
                         /*rate_den=*/3 * period}});
    set.add(std::move(f));
  }
  return set;
}

struct LatencyStats {
  double mean_us = 0;
  double p50_us = 0;
  double max_us = 0;
};

LatencyStats summarize(std::vector<double> us) {
  LatencyStats s;
  if (us.empty()) return s;
  double sum = 0;
  for (const double v : us) sum += v;
  s.mean_us = sum / static_cast<double>(us.size());
  std::sort(us.begin(), us.end());
  s.p50_us = us[us.size() / 2];
  s.max_us = us.back();
  return s;
}

}  // namespace

int main(int argc, char** argv) {
  OptionParser opts(argc, argv);
  const auto json_path = opts.value("--json");
  const auto nodes_opt = opts.value("--nodes");
  const auto flows_opt = opts.value("--flows");
  const auto rounds_opt = opts.value("--rounds");
  if (!opts.error().empty() || !opts.unknown_options().empty() ||
      !opts.positionals().empty()) {
    std::fprintf(stderr,
                 "usage: bench_provision [--nodes N] [--flows N] [--rounds N]"
                 " [--json FILE]\n");
    return 2;
  }
  const std::int32_t nodes = nodes_opt ? std::atoi(nodes_opt->c_str()) : 10;
  const std::int32_t flows = flows_opt ? std::atoi(flows_opt->c_str()) : 48;
  const std::size_t rounds =
      rounds_opt ? static_cast<std::size_t>(std::atoll(rounds_opt->c_str()))
                 : 40;
  if (nodes < 5 || flows < 1 || rounds == 0) {
    std::fprintf(stderr,
                 "bench_provision: --nodes must be >= 5, --flows and"
                 " --rounds >= 1\n");
    return 2;
  }

  const model::FlowSet set = make_workload(nodes, flows);
  std::printf("workload: %d flows over a %d-node chain, every flow with a"
              " 2-segment arrival spec\n\n",
              flows, nodes);

  // ---- plan latency.
  std::vector<double> us;
  us.reserve(rounds);
  provision::Plan plan;
  for (std::size_t r = 0; r < rounds; ++r) {
    const auto start = std::chrono::steady_clock::now();
    plan = provision::plan(set);
    us.push_back(std::chrono::duration<double, std::micro>(
                     std::chrono::steady_clock::now() - start)
                     .count());
  }
  const LatencyStats lat = summarize(std::move(us));

  // ---- simulator comparison: adversarial jitter bursts, slowest links.
  sim::SimConfig scfg;
  scfg.pattern = sim::ArrivalPattern::kAdversarialJitter;
  scfg.link_mode = sim::LinkDelayMode::kAlwaysMax;
  scfg.seed = 7;
  sim::NetworkSim simulation(set, scfg);
  simulation.run();

  bool sound_work = plan.all_sizeable;
  bool sound_depth = plan.all_sizeable;
  double max_ratio = 0;
  double bottleneck_ratio = 0;
  Duration bottleneck_observed = 0;
  TextTable t({"node", "bound (work)", "observed", "packets", "depth",
               "ratio"});
  for (NodeId h = 0; h < nodes; ++h) {
    const provision::NodeBuffer& nb = plan.nodes[static_cast<std::size_t>(h)];
    const Duration observed = simulation.max_backlog_work(h);
    const auto depth = simulation.max_queue_depth(h);
    sound_work = sound_work && observed <= nb.work;
    sound_depth =
        sound_depth && static_cast<Duration>(depth) <= nb.packets;
    double ratio = 0;
    if (observed > 0 && nb.sizeable) {
      ratio = static_cast<double>(nb.work) / static_cast<double>(observed);
      max_ratio = std::max(max_ratio, ratio);
      // The gated figure is the bottleneck node's ratio: the node the
      // simulation actually fills is where an over-sized bound costs
      // real memory; near-idle tail nodes make max_ratio arbitrary.
      if (observed > bottleneck_observed) {
        bottleneck_observed = observed;
        bottleneck_ratio = ratio;
      }
    }
    t.add_row({std::to_string(h), std::to_string(nb.work),
               std::to_string(observed), std::to_string(nb.packets),
               std::to_string(depth),
               ratio > 0 ? format_fixed(ratio, 2) : "-"});
  }
  std::printf("%s", t.to_string().c_str());
  std::printf("plan latency: mean %.1f us, p50 %.1f us, max %.1f us\n",
              lat.mean_us, lat.p50_us, lat.max_us);
  std::printf("bound/observed ratio: %.2f at the bottleneck node, %.2f"
              " worst\n",
              bottleneck_ratio, max_ratio);

  // ---- correctness gates.
  const bool ratio_ok = bottleneck_ratio > 0 && bottleneck_ratio <= 8.0;
  const bool ok =
      plan.all_sizeable && sound_work && sound_depth && ratio_ok;
  std::printf(
      "all nodes sizeable: %s; bounds dominate simulation: %s (packets:"
      " %s); ratio <= 8: %s\n",
      plan.all_sizeable ? "yes" : "NO — BUG",
      sound_work ? "yes" : "NO — BUG", sound_depth ? "yes" : "NO — BUG",
      ratio_ok ? "yes" : "NO — over budget");

  if (json_path) {
    const auto b = [](bool v) { return v ? "true" : "false"; };
    std::ostringstream js;
    js << "{\"bench\":\"bench_provision\",\"schema\":1,"
       << "\"workload\":{\"nodes\":" << nodes << ",\"flows\":" << flows
       << ",\"rounds\":" << rounds << "},"
       << "\"latency_us\":{\"mean\":" << lat.mean_us << ",\"p50\":"
       << lat.p50_us << ",\"max\":" << lat.max_us << "},"
       << "\"total_work\":" << plan.total_work << ","
       << "\"tightness\":{\"bottleneck_ratio\":" << bottleneck_ratio
       << ",\"max_ratio\":" << max_ratio << "},"
       << "\"checks\":{\"all_sizeable\":" << b(plan.all_sizeable)
       << ",\"sound_work\":" << b(sound_work)
       << ",\"sound_depth\":" << b(sound_depth)
       << ",\"ratio_ok\":" << b(ratio_ok) << ",\"ok\":" << b(ok) << "}}\n";
    std::ofstream out(*json_path);
    if (out) out << js.str();
    if (!out) {
      std::fprintf(stderr, "cannot write %s\n", json_path->c_str());
      return 2;
    }
    std::printf("json record written to %s\n", json_path->c_str());
  }
  return ok ? 0 : 1;
}
