// Experiment X2: analytic bound vs simulated worst observed response —
// the empirical soundness and tightness study the paper could not run
// (it reported analysis only).  For every workload family we print, per
// flow family, the worst observation across an adversarial scenario
// battery, the trajectory bound, and the tightness ratio observed/bound
// (1.00 = the bound is attained; must never exceed 1.00).
#include <cstdio>
#include <string>
#include <vector>

#include "base/rng.h"
#include "base/table.h"
#include "model/generators.h"
#include "model/paper_example.h"
#include "sim/worst_case_search.h"
#include "trajectory/analysis.h"

namespace {

using namespace tfa;

void report(const std::string& family, const model::FlowSet& set,
            TextTable& out, std::size_t random_runs = 32,
            std::uint64_t seed = 0x7FA) {
  sim::SearchConfig scfg;
  scfg.random_runs = random_runs;
  scfg.base_seed = seed;
  const sim::SearchOutcome obs = sim::find_worst_case(set, scfg);
  const trajectory::Result tr = trajectory::analyze(set);

  Duration worst_obs = 0, at_bound = 0;
  double worst_ratio = 0.0;
  bool sound = true;
  for (const auto& b : tr.bounds) {
    const auto i = static_cast<std::size_t>(b.flow);
    const Duration o = obs.stats[i].worst;
    if (o > b.response) sound = false;
    const double ratio =
        static_cast<double>(o) / static_cast<double>(b.response);
    if (ratio > worst_ratio) {
      worst_ratio = ratio;
      worst_obs = o;
      at_bound = b.response;
    }
  }
  out.add_row({family, std::to_string(set.size()),
               std::to_string(obs.runs), format_duration(worst_obs),
               format_duration(at_bound), format_fixed(worst_ratio, 2),
               sound ? "yes" : "VIOLATED"});
}

}  // namespace

int main() {
  std::printf("== X2: soundness & tightness of the trajectory bound "
              "(Property 2) ==\n\n");

  TextTable t({"family", "flows", "scenarios", "tightest obs", "its bound",
               "obs/bound", "sound"});

  report("paper example", model::paper_example(), t, 64);

  {
    model::ParkingLotConfig cfg;
    cfg.hops = 7;
    cfg.cross_flows = 6;
    cfg.cross_span = 3;
    cfg.period = 140;
    report("parking lot 7x6", model::make_parking_lot(cfg), t);
  }
  {
    model::RingConfig cfg;
    cfg.nodes = 8;
    cfg.flows = 8;
    cfg.span = 4;
    report("ring 8x8", model::make_ring(cfg), t);
  }
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    Rng rng(seed);
    model::RandomConfig cfg;
    cfg.nodes = 10;
    cfg.flows = 7;
    cfg.max_path = 5;
    cfg.max_jitter = 12;
    cfg.max_utilisation = 0.55;
    report("random #" + std::to_string(seed), model::make_random(cfg, rng), t,
           24, seed * 101);
  }

  std::printf("%s\n", t.to_string().c_str());
  std::printf("obs/bound = 1.00 means a scenario attained the analytic "
              "bound (tight);\nany value above 1.00 would disprove "
              "Property 2 for this implementation.\n");
  return 0;
}
