// Experiment: throughput of the SoA interference kernels
// (trajectory/soa.h) against the scalar saturating fold, on a clustered
// 10k-flow workload.
//
// Workload: K disjoint clusters of 4 nodes, each carrying F flows over
// two-node paths with staggered periods and release jitters ~25 periods
// wide, so every prefix sweep evaluates hundreds of candidate instants
// (defaults: K=100, F=100 — 10,000 flows).  Clusters are analysed as
// independent sets (the flow-dependency graph is disjoint by
// construction), all single-threaded, so the two kernels execute the
// exact same per-prefix work items in the same order.
//
// The metric is Smax fixed-point passes per second: total smax_passes
// over the summed kernel-driven engine spans (EngineStats::
// fixed_point_ns + extract_ns — the fixed point plus the final bound
// extraction, both of which run the per-prefix kernels; geometry
// construction is shared cost and excluded).  Because the kernels are
// bit-identical,
// both runs execute the same number of passes, candidates, and
// busy-period iterations — verified below, bound for bound and counter
// for counter — so the ratio isolates the kernel win.  The committed
// BENCH_soa.json requires scalar_over_soa <= 0.667 (speedup >= 1.5x).
//
// Each kernel is measured --repeat times (default 3) and the repeat
// with the smallest kernel span is kept — the usual best-of-N protocol
// that strips scheduler and cache contention noise from a throughput
// ratio (the work is deterministic, so repeats differ only by noise).
//
// Options (base/options.h):
//   --clusters N   disjoint clusters (default 100)
//   --flows N      flows per cluster (default 100)
//   --repeat N     timed repeats per kernel, best kept (default 3)
//   --json FILE    write the BENCH_soa.json record
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "base/options.h"
#include "base/table.h"
#include "model/flow_set.h"
#include "trajectory/analysis.h"

namespace {

using namespace tfa;

constexpr std::int32_t kClusterNodes = 4;

/// One cluster's flow set: F flows over two-node paths on a 4-node
/// network, periods staggered over 64..120, release jitters ~25 periods
/// wide (that is what makes the exact sweep enumerate hundreds of
/// candidate instants per prefix).  Deterministic: parameters cycle by
/// flow index, no RNG.
model::FlowSet cluster_set(std::int32_t cluster, std::int32_t flows) {
  model::FlowSet set(model::Network(kClusterNodes, 1, 1));
  for (std::int32_t i = 0; i < flows; ++i) {
    const NodeId a = i % kClusterNodes;
    const NodeId b =
        (i % kClusterNodes + 1 + (i / kClusterNodes) % (kClusterNodes - 1)) %
        kClusterNodes;
    const Duration period = 64 + 8 * (i % 8);
    const Duration jitter = 25 * period + 16 * (i % 5);
    set.add(model::SporadicFlow(
        "c" + std::to_string(cluster) + "_f" + std::to_string(i),
        model::Path{a, b}, period, /*cost=*/1, jitter, /*deadline=*/100'000));
  }
  return set;
}

struct KernelRun {
  std::vector<trajectory::Result> results;
  std::size_t passes = 0;
  std::size_t test_points = 0;
  std::size_t busy_iterations = 0;
  double fixed_point_ms = 0;
  double extract_ms = 0;
  double kernel_ms = 0;  ///< fixed_point_ms + extract_ms.
  double wall_ms = 0;
};

KernelRun run_all(const std::vector<model::FlowSet>& sets,
                  trajectory::Kernel kernel) {
  trajectory::Config cfg;
  cfg.workers = 1;
  cfg.kernel = kernel;
  KernelRun r;
  r.results.reserve(sets.size());
  const auto start = std::chrono::steady_clock::now();
  for (const model::FlowSet& set : sets)
    r.results.push_back(trajectory::analyze(set, cfg));
  r.wall_ms = std::chrono::duration<double, std::milli>(
                  std::chrono::steady_clock::now() - start)
                  .count();
  std::int64_t fp_ns = 0;
  std::int64_t ex_ns = 0;
  for (const trajectory::Result& res : r.results) {
    r.passes += res.stats.smax_passes;
    r.test_points += res.stats.test_points;
    r.busy_iterations += res.stats.busy_period_iterations;
    fp_ns += res.stats.fixed_point_ns;
    ex_ns += res.stats.extract_ns;
  }
  r.fixed_point_ms = static_cast<double>(fp_ns) / 1e6;
  r.extract_ms = static_cast<double>(ex_ns) / 1e6;
  r.kernel_ms = r.fixed_point_ms + r.extract_ms;
  return r;
}

/// Best of `repeats` timed runs (smallest kernel span).  Every repeat
/// performs bit-identical work, so picking the least-disturbed one
/// changes only the noise, never the measured computation.
KernelRun best_of(const std::vector<model::FlowSet>& sets,
                  trajectory::Kernel kernel, std::int32_t repeats) {
  KernelRun best = run_all(sets, kernel);
  for (std::int32_t i = 1; i < repeats; ++i) {
    KernelRun next = run_all(sets, kernel);
    if (next.kernel_ms < best.kernel_ms) best = std::move(next);
  }
  return best;
}

/// Full-width comparison of the two kernels' outputs: every bound field
/// of every flow of every cluster.  Returns a diagnostic, empty on
/// bit-identity.
std::string compare(const KernelRun& scalar, const KernelRun& soa) {
  if (scalar.results.size() != soa.results.size()) return "set count differs";
  for (std::size_t s = 0; s < scalar.results.size(); ++s) {
    const trajectory::Result& a = scalar.results[s];
    const trajectory::Result& b = soa.results[s];
    const std::string at = " in cluster " + std::to_string(s);
    if (a.converged != b.converged) return "convergence differs" + at;
    if (a.bounds.size() != b.bounds.size()) return "bound count differs" + at;
    for (std::size_t i = 0; i < a.bounds.size(); ++i) {
      const auto& x = a.bounds[i];
      const auto& y = b.bounds[i];
      if (x.response != y.response || x.busy_period != y.busy_period ||
          x.jitter != y.jitter || x.critical_instant != y.critical_instant ||
          x.prefix_responses != y.prefix_responses)
        return "bound " + std::to_string(i) + " differs" + at;
    }
  }
  return {};
}

double passes_per_sec(const KernelRun& r) {
  return r.kernel_ms > 0
             ? static_cast<double>(r.passes) / (r.kernel_ms / 1e3)
             : 0;
}

}  // namespace

int main(int argc, char** argv) {
  OptionParser opts(argc, argv);
  const auto json_path = opts.value("--json");
  const auto clusters_opt = opts.value("--clusters");
  const auto flows_opt = opts.value("--flows");
  const auto repeat_opt = opts.value("--repeat");
  if (!opts.error().empty() || !opts.unknown_options().empty() ||
      !opts.positionals().empty()) {
    std::fprintf(stderr,
                 "usage: bench_soa [--clusters N] [--flows N] [--repeat N] "
                 "[--json FILE]\n");
    return 2;
  }
  const std::int32_t clusters =
      clusters_opt ? std::atoi(clusters_opt->c_str()) : 100;
  const std::int32_t flows = flows_opt ? std::atoi(flows_opt->c_str()) : 100;
  const std::int32_t repeats = repeat_opt ? std::atoi(repeat_opt->c_str()) : 3;
  if (clusters < 1 || flows < 2 || repeats < 1) {
    std::fprintf(stderr,
                 "bench_soa: --clusters must be >= 1, --flows >= 2, "
                 "--repeat >= 1\n");
    return 2;
  }
  const std::size_t total_flows =
      static_cast<std::size_t>(clusters) * static_cast<std::size_t>(flows);

  std::vector<model::FlowSet> sets;
  sets.reserve(static_cast<std::size_t>(clusters));
  for (std::int32_t c = 0; c < clusters; ++c)
    sets.push_back(cluster_set(c, flows));
  std::printf("workload: %zu flows in %d clusters of %d (4 nodes each)\n\n",
              total_flows, clusters, flows);

  // Scalar first, SoA second; each repeat is a fresh analysis of every
  // set, and the least-disturbed repeat per kernel is kept.
  const KernelRun scalar =
      best_of(sets, trajectory::Kernel::kScalar, repeats);
  const KernelRun soa = best_of(sets, trajectory::Kernel::kSoa, repeats);

  const double scalar_pps = passes_per_sec(scalar);
  const double soa_pps = passes_per_sec(soa);
  const double speedup = scalar_pps > 0 ? soa_pps / scalar_pps : 0;
  const double scalar_over_soa = soa_pps > 0 ? scalar_pps / soa_pps : 1e9;

  TextTable t({"kernel", "passes", "fixed point ms", "extract ms", "wall ms",
               "passes/sec"});
  t.add_row({"scalar", std::to_string(scalar.passes),
             format_fixed(scalar.fixed_point_ms, 1),
             format_fixed(scalar.extract_ms, 1),
             format_fixed(scalar.wall_ms, 1), format_fixed(scalar_pps, 1)});
  t.add_row({"soa", std::to_string(soa.passes),
             format_fixed(soa.fixed_point_ms, 1),
             format_fixed(soa.extract_ms, 1),
             format_fixed(soa.wall_ms, 1), format_fixed(soa_pps, 1)});
  std::printf("%s", t.to_string().c_str());
  std::printf("speedup (soa / scalar passes/sec): %.2fx\n", speedup);

  // ---- correctness gates.  The speedup itself is NOT part of `ok`:
  // tiny smoke scales are too noisy for a stable ratio, so the throughput
  // bound is enforced on the committed full-scale record via
  // check_bench_json --max scalar_over_soa=0.667.
  const std::string why = compare(scalar, soa);
  const bool bounds_match = why.empty();
  const bool counters_match = scalar.passes == soa.passes &&
                              scalar.test_points == soa.test_points &&
                              scalar.busy_iterations == soa.busy_iterations;
  const bool speedup_ok = speedup >= 1.5;
  const bool ok = bounds_match && counters_match;
  std::printf(
      "bounds bit-identical: %s; work counters identical: %s; "
      "speedup >= 1.5: %s\n",
      bounds_match ? "yes" : ("NO — BUG: " + why).c_str(),
      counters_match ? "yes" : "NO — BUG",
      speedup_ok ? "yes" : "no (informational at smoke scale)");

  if (json_path) {
    const auto b = [](bool v) { return v ? "true" : "false"; };
    std::ostringstream js;
    js << "{\"bench\":\"bench_soa\",\"schema\":1,"
       << "\"workload\":{\"clusters\":" << clusters
       << ",\"flows_per_cluster\":" << flows << ",\"flows\":" << total_flows
       << ",\"repeats\":" << repeats << "},"
       << "\"passes\":{\"scalar\":" << scalar.passes << ",\"soa\":"
       << soa.passes << "},"
       << "\"test_points\":{\"scalar\":" << scalar.test_points << ",\"soa\":"
       << soa.test_points << "},"
       << "\"fixed_point_ms\":{\"scalar\":" << scalar.fixed_point_ms
       << ",\"soa\":" << soa.fixed_point_ms << "},"
       << "\"extract_ms\":{\"scalar\":" << scalar.extract_ms << ",\"soa\":"
       << soa.extract_ms << "},"
       << "\"kernel_ms\":{\"scalar\":" << scalar.kernel_ms << ",\"soa\":"
       << soa.kernel_ms << "},"
       << "\"wall_ms\":{\"scalar\":" << scalar.wall_ms << ",\"soa\":"
       << soa.wall_ms << "},"
       << "\"passes_per_sec\":{\"scalar\":" << scalar_pps << ",\"soa\":"
       << soa_pps << "},"
       << "\"speedup\":" << speedup << ","
       << "\"scalar_over_soa\":" << scalar_over_soa << ","
       << "\"checks\":{\"bounds_match\":" << b(bounds_match)
       << ",\"counters_match\":" << b(counters_match)
       << ",\"speedup_ok\":" << b(speedup_ok) << ",\"ok\":" << b(ok) << "}}\n";
    std::ofstream out(*json_path);
    if (out) out << js.str();
    if (!out) {
      std::fprintf(stderr, "cannot write %s\n", json_path->c_str());
      return 2;
    }
    std::printf("json record written to %s\n", json_path->c_str());
  }
  return ok ? 0 : 1;
}
