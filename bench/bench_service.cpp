// Experiment: throughput of the long-lived analysis service (src/service/)
// against the one-shot alternative it replaces.
//
// Three request streams over the in-process loopback transport, all ending
// in the same analyzed sets:
//   1. cold     every round loads a fresh session and analyzes it from
//               scratch — the cost of a client that re-serialises its whole
//               network per query;
//   2. warm     one session, one add_flow + analyze per round — the
//               AnalysisCache warm-starts every re-analysis;
//   3. memo     repeated analyze of an unchanged session — answered from
//               the per-session memo without touching the engine.
//
// Wall times and requests/sec depend on the host; the pass counters and
// response bounds are deterministic, and the warm stream must converge in
// strictly fewer total Smax passes than the cold stream on any host.
//
// A second mode exercises the socket transport end to end:
//
//   --mode load  closed-loop load generator against a live SocketServer
//                (loopback TCP, ephemeral port): N client threads, each
//                with its own connection, drive M shared sessions with a
//                mixed request stream (memo-hit analyzes, add/analyze/
//                remove perturbations, metrics probes) and record every
//                request's round-trip latency.  Reports throughput and
//                p50/p95/p99/max latency; the correctness gates require
//                every response to be a success envelope and no
//                connection to be shed.
//
// A third mode measures what live observability costs:
//
//   --mode obs   runs the load workload twice over the same server shape —
//                once with every observability feature off (no event log,
//                flight recorder disabled, no metrics endpoint, no client
//                trace ids) and once with all of them on (client-supplied
//                trace_id on every request, event log at info severity,
//                flight recorder armed, Prometheus endpoint up and scraped
//                once) — alternating three repetitions each and taking the
//                best wall time per configuration.  Reports
//                overhead_ratio = best_on / best_off; the committed
//                BENCH_service_obs.json record gates it at <= 1.10
//                (tools/check_bench_json.py --max overhead_ratio=1.10).
//
// Options (base/options.h):
//   --mode M     "streams" (default), "load" or "obs"
//   --flows N    base workload size (default 160; load default 24)
//   --rounds N   streams: add/analyze rounds per stream (default 24)
//   --conns N    load: client connections/threads (default 8)
//   --sessions N load: shared sessions driven by the clients (default 4)
//   --requests N load: requests per connection (default 240)
//   --executors N load: server executor threads (default 2)
//   --json FILE  additionally write a machine-readable record
//                (schema 1 for streams — {"bench","schema","workload",
//                "wall_ms","requests_per_sec","checks","metrics"} with
//                "metrics" the full registry dump — schema 2 for load,
//                documented in docs/performance.md).
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <mutex>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "base/json.h"
#include "base/net.h"
#include "base/options.h"
#include "base/rng.h"
#include "base/table.h"
#include "model/generators.h"
#include "model/serialize.h"
#include "obs/eventlog.h"
#include "obs/telemetry.h"
#include "service/loopback.h"
#include "service/protocol.h"
#include "service/socket_transport.h"

namespace {

using namespace tfa;

model::FlowSet make_workload(std::uint64_t seed, std::int32_t flows) {
  Rng rng(seed);
  model::RandomConfig cfg;
  cfg.nodes = 24;
  cfg.flows = flows;
  cfg.min_path = 2;
  cfg.max_path = 4;
  cfg.max_jitter = 8;
  cfg.max_utilisation = 0.5;
  return model::make_random(cfg, rng);
}

std::string newcomer_line(std::size_t round) {
  return "flow bench" + std::to_string(round) + " EF " +
         std::to_string(400 + 7 * round) + " 0 100000 path 0 1 costs 1";
}

double ms_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - start)
      .count();
}

/// Sum of result.stats.smax_passes over a stream's analyze responses.
std::size_t total_passes(const std::vector<std::string>& responses) {
  std::size_t passes = 0;
  for (const std::string& r : responses) {
    const auto doc = json_parse(r);
    if (!doc.has_value()) continue;
    const JsonValue* result = doc->find("result");
    const JsonValue* stats = result == nullptr ? nullptr : result->find("stats");
    const JsonValue* p = stats == nullptr ? nullptr : stats->find("smax_passes");
    if (p != nullptr) passes += static_cast<std::size_t>(p->number);
  }
  return passes;
}

/// The deterministic bounds region of an analyze response (everything
/// between the cached flag and the run-dependent stats block).
std::string bounds_region(const std::string& response) {
  const auto from = response.find("\"all_schedulable\"");
  const auto to = response.find(",\"stats\"");
  if (from == std::string::npos || to == std::string::npos || to < from)
    return response;
  return response.substr(from, to - from);
}

bool all_ok(const std::vector<std::string>& responses) {
  for (const std::string& r : responses)
    if (r.find("\"ok\":true") == std::string::npos) return false;
  return true;
}

/// `v` must be sorted ascending; nearest-rank percentile in the same
/// unit as the samples.
double percentile(const std::vector<double>& v, double pct) {
  if (v.empty()) return 0.0;
  const auto idx = static_cast<std::size_t>(
      pct / 100.0 * static_cast<double>(v.size() - 1) + 0.5);
  return v[std::min(idx, v.size() - 1)];
}

/// One load-generator client: a closed loop over its own connection,
/// cycling memo analyzes, an add/analyze/remove/analyze perturbation and
/// a metrics probe across the shared sessions.
struct LoadClient {
  std::size_t id = 0;
  std::size_t sessions = 0;
  std::size_t requests = 0;
  bool with_trace = false;  ///< Attach a client trace_id to every request.

  std::vector<double> latency_us;  ///< One sample per request.
  std::size_t failures = 0;        ///< Non-success envelopes.
  std::size_t cached = 0;          ///< Memo-hit analyze responses.
  bool transport_ok = true;        ///< Socket stayed up to the end.

  void run(std::uint16_t port) {
    std::string error;
    net::LineClient client(net::connect_tcp(port, &error));
    if (!client.connected()) {
      transport_ok = false;
      return;
    }
    for (std::size_t r = 0; r < requests; ++r) {
      const std::string session =
          "load" + std::to_string((id + r) % sessions);
      const std::string flow_name =
          "ld_" + std::to_string(id) + "_" + std::to_string(r);
      std::string line;
      switch (r % 6) {
        case 1:
          line = R"({"op":"add_flow","session":)" +
                 service::json_string(session) + ",\"flow\":" +
                 service::json_string("flow " + flow_name +
                                      " EF 400 0 100000 path 0 1 costs 1") +
                 "}";
          break;
        case 3:
          // Remove the flow added two requests ago (same session: the
          // cycle advances the session index by 2 in between).
          line = R"({"op":"remove_flow","session":)" +
                 service::json_string("load" +
                                      std::to_string((id + r - 2) % sessions)) +
                 ",\"name\":" +
                 service::json_string("ld_" + std::to_string(id) + "_" +
                                      std::to_string(r - 2)) +
                 "}";
          break;
        case 5:
          line = R"({"op":"metrics"})";
          break;
        default:
          line = R"({"op":"analyze","session":)" +
                 service::json_string(session) + "}";
          break;
      }
      if (with_trace)
        line.insert(line.size() - 1,
                    ",\"trace_id\":\"c" + std::to_string(id) + "r" +
                        std::to_string(r) + "\"");
      const auto start = std::chrono::steady_clock::now();
      if (!client.send_line(line)) {
        transport_ok = false;
        return;
      }
      const std::optional<std::string> response = client.read_line();
      if (!response.has_value()) {
        transport_ok = false;
        return;
      }
      latency_us.push_back(
          std::chrono::duration<double, std::micro>(
              std::chrono::steady_clock::now() - start)
              .count());
      if (response->find("\"ok\":true") == std::string::npos) ++failures;
      if (response->find("\"cached\":true") != std::string::npos) ++cached;
    }
  }
};

/// One full load-generator pass: server up, sessions staged, clients
/// run, server down.
struct LoadOutcome {
  double wall_ms = 0.0;
  double rps = 0.0;
  double p50 = 0.0, p95 = 0.0, p99 = 0.0, lat_max = 0.0;
  std::size_t answered = 0;
  std::size_t expected = 0;
  std::size_t failures = 0;
  std::size_t cached = 0;
  std::uint64_t accepted = 0, shed = 0, served = 0;
  bool transport_ok = true;
  std::uint64_t events_recorded = 0;  ///< Obs runs: event-log lines kept.
  bool scrape_ok = true;              ///< Obs runs: endpoint answered.

  [[nodiscard]] bool ok() const {
    return transport_ok && answered == expected && failures == 0 &&
           shed == 0 && scrape_ok;
  }
};

/// Minimal HTTP GET of /metrics; true when the body looks like the
/// transport's exposition.
bool scrape_metrics(std::uint16_t port) {
  std::string error;
  net::LineClient http(net::connect_tcp(port, &error));
  if (!http.connected()) return false;
  if (!http.send_raw("GET /metrics HTTP/1.1\r\nHost: localhost\r\n\r\n"))
    return false;
  std::string body;
  while (const std::optional<std::string> l = http.read_line()) {
    body += *l;
    body += '\n';
  }
  return body.find("tfa_service_net_requests") != std::string::npos;
}

std::optional<LoadOutcome> run_load(std::int32_t flows, std::size_t conns,
                                    std::size_t sessions, std::size_t requests,
                                    std::size_t executors, bool obs_on) {
  // Obs-on: everything the live-observability layer offers at once —
  // client trace ids, event log (info severity, ring + sink), flight
  // recorder armed, Prometheus endpoint up (scraped once, outside the
  // measured window).  Obs-off: all of it disabled.
  std::ostringstream event_sink;
  obs::EventLog event_log;
  if (obs_on) event_log.set_sink(&event_sink);

  service::SocketServerConfig server_cfg;
  server_cfg.max_conns = conns + 1;
  server_cfg.executors = executors;
  server_cfg.service.max_sessions = sessions;
  if (obs_on) {
    server_cfg.service.event_log = &event_log;
    server_cfg.service.flight_recorder_depth = 32;
    server_cfg.metrics_port = 0;
  } else {
    server_cfg.service.flight_recorder_depth = 0;
  }
  service::SocketServer server(std::move(server_cfg));
  std::string error;
  if (!server.start(&error)) {
    std::fprintf(stderr, "bench_service: %s\n", error.c_str());
    return std::nullopt;
  }

  // Stage the shared sessions over one setup connection, outside the
  // measured window.
  const std::string text =
      model::serialize_flow_set(make_workload(/*seed=*/7, flows));
  {
    net::LineClient setup(net::connect_tcp(server.port(), &error));
    if (!setup.connected()) {
      std::fprintf(stderr, "bench_service: %s\n", error.c_str());
      return std::nullopt;
    }
    for (std::size_t s = 0; s < sessions; ++s) {
      (void)setup.send_line(
          R"({"op":"load_network","session":)" +
          service::json_string("load" + std::to_string(s)) +
          ",\"text\":" + service::json_string(text) + "}");
      const auto response = setup.read_line();
      if (!response.has_value() ||
          response->find("\"ok\":true") == std::string::npos) {
        std::fprintf(stderr, "bench_service: session setup failed: %s\n",
                     response.value_or("<eof>").c_str());
        return std::nullopt;
      }
    }
  }

  std::vector<LoadClient> clients(conns);
  for (std::size_t i = 0; i < conns; ++i) {
    clients[i].id = i;
    clients[i].sessions = sessions;
    clients[i].requests = requests;
    clients[i].with_trace = obs_on;
  }
  const auto wall_start = std::chrono::steady_clock::now();
  {
    std::vector<std::thread> threads;
    threads.reserve(conns);
    for (LoadClient& c : clients)
      threads.emplace_back([&c, &server] { c.run(server.port()); });
    for (std::thread& t : threads) t.join();
  }
  LoadOutcome out;
  out.wall_ms = ms_since(wall_start);
  if (obs_on) out.scrape_ok = scrape_metrics(server.metrics_port());
  server.stop();

  std::vector<double> latency_us;
  for (const LoadClient& c : clients) {
    latency_us.insert(latency_us.end(), c.latency_us.begin(),
                      c.latency_us.end());
    out.failures += c.failures;
    out.cached += c.cached;
    out.transport_ok = out.transport_ok && c.transport_ok;
  }
  std::sort(latency_us.begin(), latency_us.end());
  out.expected = conns * requests;
  out.answered = latency_us.size();
  out.rps = static_cast<double>(latency_us.size()) / (out.wall_ms / 1e3);
  out.p50 = percentile(latency_us, 50);
  out.p95 = percentile(latency_us, 95);
  out.p99 = percentile(latency_us, 99);
  out.lat_max = latency_us.empty() ? 0.0 : latency_us.back();
  out.accepted = server.connections_accepted();
  out.shed = server.connections_shed();
  out.served = server.requests_served();
  if (obs_on) out.events_recorded = event_log.recorded();
  return out;
}

int run_load_mode(std::int32_t flows, std::size_t conns, std::size_t sessions,
                  std::size_t requests, std::size_t executors,
                  const std::optional<std::string>& json_path) {
  std::printf(
      "load: %zu connection(s) x %zu request(s) over %zu shared "
      "session(s), %d flows each, %zu executor(s)\n\n",
      conns, requests, sessions, flows, executors);

  const std::optional<LoadOutcome> outcome =
      run_load(flows, conns, sessions, requests, executors, /*obs_on=*/false);
  if (!outcome.has_value()) return 2;
  const double wall_ms = outcome->wall_ms;
  const double rps = outcome->rps;
  const double p50 = outcome->p50;
  const double p95 = outcome->p95;
  const double p99 = outcome->p99;
  const double lat_max = outcome->lat_max;

  TextTable t({"metric", "value"});
  t.add_row({"wall ms", format_fixed(wall_ms, 1)});
  t.add_row({"requests/s", format_fixed(rps, 0)});
  t.add_row({"latency p50 us", format_fixed(p50, 0)});
  t.add_row({"latency p95 us", format_fixed(p95, 0)});
  t.add_row({"latency p99 us", format_fixed(p99, 0)});
  t.add_row({"latency max us", format_fixed(lat_max, 0)});
  std::printf("%s", t.to_string().c_str());

  const bool complete =
      outcome->transport_ok && outcome->answered == outcome->expected;
  const bool no_failures = outcome->failures == 0;
  const bool none_shed = outcome->shed == 0;
  const bool ok = complete && no_failures && none_shed;
  std::printf(
      "\n%zu/%zu answered (%zu failure(s)), %zu memo hit(s); "
      "%llu accepted, %llu shed — %s\n",
      outcome->answered, outcome->expected, outcome->failures, outcome->cached,
      static_cast<unsigned long long>(outcome->accepted),
      static_cast<unsigned long long>(outcome->shed), ok ? "ok" : "BUG");

  if (json_path) {
    const auto b = [](bool v) { return v ? "true" : "false"; };
    std::ostringstream js;
    js << "{\"bench\":\"bench_service\",\"schema\":2,\"mode\":\"load\","
       << "\"workload\":{\"connections\":" << conns
       << ",\"sessions\":" << sessions
       << ",\"requests_per_connection\":" << requests
       << ",\"flows\":" << flows << ",\"executors\":" << executors << "},"
       << "\"wall_ms\":" << wall_ms << ",\"requests_per_sec\":" << rps << ","
       << "\"latency_us\":{\"p50\":" << p50 << ",\"p95\":" << p95
       << ",\"p99\":" << p99 << ",\"max\":" << lat_max << "},"
       << "\"transport\":{\"accepted\":" << outcome->accepted
       << ",\"shed\":" << outcome->shed << ",\"requests\":" << outcome->served
       << ",\"memo_hits\":" << outcome->cached << "},"
       << "\"checks\":{\"complete\":" << b(complete)
       << ",\"no_failures\":" << b(no_failures)
       << ",\"none_shed\":" << b(none_shed) << ",\"ok\":" << b(ok) << "}}\n";
    std::ofstream out(*json_path);
    if (out) out << js.str();
    if (!out) {
      std::fprintf(stderr, "cannot write %s\n", json_path->c_str());
      return 2;
    }
    std::printf("json record written to %s\n", json_path->c_str());
  }
  return ok ? 0 : 1;
}

int run_obs_mode(std::int32_t flows, std::size_t conns, std::size_t sessions,
                 std::size_t requests, std::size_t executors,
                 const std::optional<std::string>& json_path) {
  std::printf(
      "obs overhead: %zu connection(s) x %zu request(s) over %zu shared "
      "session(s), %d flows each, %zu executor(s); 3 repetitions per "
      "configuration, alternating\n\n",
      conns, requests, sessions, flows, executors);

  // Alternate off/on so drift (thermal, cache, scheduler) hits both
  // configurations evenly; the best wall time per configuration is the
  // comparison — minima are far more stable than means under load.
  std::optional<LoadOutcome> best_off, best_on;
  bool all_ok_runs = true;
  std::uint64_t events_recorded = 0;
  bool scrape_ok = true;
  for (int rep = 0; rep < 3; ++rep) {
    for (const bool obs_on : {false, true}) {
      std::optional<LoadOutcome> r =
          run_load(flows, conns, sessions, requests, executors, obs_on);
      if (!r.has_value()) return 2;
      all_ok_runs = all_ok_runs && r->ok();
      std::optional<LoadOutcome>& best = obs_on ? best_on : best_off;
      if (obs_on) {
        events_recorded += r->events_recorded;
        scrape_ok = scrape_ok && r->scrape_ok;
      }
      if (!best.has_value() || r->wall_ms < best->wall_ms) best = std::move(r);
    }
  }
  const double ratio =
      best_off->wall_ms > 0.0 ? best_on->wall_ms / best_off->wall_ms : 0.0;

  TextTable t({"configuration", "wall ms", "requests/s", "p50 us", "p99 us"});
  t.add_row({"observability off", format_fixed(best_off->wall_ms, 1),
             format_fixed(best_off->rps, 0), format_fixed(best_off->p50, 0),
             format_fixed(best_off->p99, 0)});
  t.add_row({"observability on", format_fixed(best_on->wall_ms, 1),
             format_fixed(best_on->rps, 0), format_fixed(best_on->p50, 0),
             format_fixed(best_on->p99, 0)});
  std::printf("%s", t.to_string().c_str());

  const bool events_flowed = events_recorded > 0;
  const bool ok = all_ok_runs && scrape_ok && events_flowed;
  std::printf(
      "\noverhead ratio (on/off, best of 3): %s; %llu event(s) logged, "
      "metrics scrape %s — %s\n",
      format_fixed(ratio, 3).c_str(),
      static_cast<unsigned long long>(events_recorded),
      scrape_ok ? "ok" : "FAILED", ok ? "ok" : "BUG");

  if (json_path) {
    const auto b = [](bool v) { return v ? "true" : "false"; };
    const auto run_js = [](const LoadOutcome& r) {
      std::ostringstream js;
      js << "{\"wall_ms\":" << r.wall_ms
         << ",\"requests_per_sec\":" << r.rps
         << ",\"latency_us\":{\"p50\":" << r.p50 << ",\"p95\":" << r.p95
         << ",\"p99\":" << r.p99 << ",\"max\":" << r.lat_max << "}}";
      return js.str();
    };
    std::ostringstream js;
    js << "{\"bench\":\"bench_service\",\"schema\":3,\"mode\":\"obs\","
       << "\"workload\":{\"connections\":" << conns
       << ",\"sessions\":" << sessions
       << ",\"requests_per_connection\":" << requests
       << ",\"flows\":" << flows << ",\"executors\":" << executors
       << ",\"repetitions\":3},"
       << "\"off\":" << run_js(*best_off) << ","
       << "\"on\":" << run_js(*best_on) << ","
       << "\"overhead_ratio\":" << ratio << ","
       << "\"events_recorded\":" << events_recorded << ","
       << "\"checks\":{\"runs_ok\":" << b(all_ok_runs)
       << ",\"scrape_ok\":" << b(scrape_ok)
       << ",\"events_flowed\":" << b(events_flowed) << ",\"ok\":" << b(ok)
       << "}}\n";
    std::ofstream out(*json_path);
    if (out) out << js.str();
    if (!out) {
      std::fprintf(stderr, "cannot write %s\n", json_path->c_str());
      return 2;
    }
    std::printf("json record written to %s\n", json_path->c_str());
  }
  return ok ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  OptionParser opts(argc, argv);
  const auto json_path = opts.value("--json");
  const auto mode_opt = opts.value("--mode");
  const auto flows_opt = opts.value("--flows");
  const auto rounds_opt = opts.value("--rounds");
  const auto conns_opt = opts.value("--conns");
  const auto sessions_opt = opts.value("--sessions");
  const auto requests_opt = opts.value("--requests");
  const auto executors_opt = opts.value("--executors");
  const std::string mode = mode_opt.value_or("streams");
  if (!opts.error().empty() || !opts.unknown_options().empty() ||
      !opts.positionals().empty() ||
      (mode != "streams" && mode != "load" && mode != "obs")) {
    std::fprintf(stderr,
                 "usage: bench_service [--mode streams|load|obs] [--flows N] "
                 "[--rounds N]\n"
                 "                     [--conns N] [--sessions N] "
                 "[--requests N] [--executors N]\n"
                 "                     [--json FILE]\n");
    return 2;
  }
  const auto size_opt = [](const std::optional<std::string>& o,
                           std::size_t fallback) {
    return o ? static_cast<std::size_t>(std::atoll(o->c_str())) : fallback;
  };
  if (mode == "load" || mode == "obs") {
    const std::int32_t flows =
        flows_opt ? std::atoi(flows_opt->c_str()) : 24;
    const std::size_t conns = size_opt(conns_opt, 8);
    const std::size_t sessions = size_opt(sessions_opt, 4);
    const std::size_t requests = size_opt(requests_opt, 240);
    const std::size_t executors = size_opt(executors_opt, 2);
    if (flows <= 1 || conns == 0 || sessions == 0 || requests == 0) {
      std::fprintf(stderr,
                   "bench_service: --flows must be > 1; --conns, --sessions "
                   "and --requests > 0\n");
      return 2;
    }
    if (mode == "obs")
      return run_obs_mode(flows, conns, sessions, requests, executors,
                          json_path);
    return run_load_mode(flows, conns, sessions, requests, executors,
                         json_path);
  }
  const std::int32_t flows = flows_opt ? std::atoi(flows_opt->c_str()) : 160;
  const std::size_t rounds = size_opt(rounds_opt, 24);
  if (flows <= 1 || rounds == 0) {
    std::fprintf(stderr, "bench_service: --flows must be > 1, --rounds > 0\n");
    return 2;
  }

  obs::Telemetry tel;
  const model::FlowSet base = make_workload(/*seed=*/7, flows);
  std::printf("workload: %zu flows, %d nodes, %zu rounds per stream\n\n",
              base.size(), base.network().node_count(), rounds);

  // The cold stream loads the round-r set from text, so build the grown
  // sets up front — serialisation cost is the client's, not the service's,
  // in both deployment styles.
  std::vector<std::string> grown_texts;
  {
    model::FlowSet grown = base;
    for (std::size_t r = 0; r < rounds; ++r) {
      const model::ParseResult one =
          model::parse_flow_set(model::serialize_flow_set(
              model::FlowSet(base.network())) + newcomer_line(r) + "\n");
      grown.add(one.flow_set->flow(FlowIndex{0}));
      grown_texts.push_back(model::serialize_flow_set(grown));
    }
  }

  // ---- 1. cold: fresh session per round.
  service::ServiceConfig cold_cfg;
  cold_cfg.max_sessions = rounds + 1;
  service::Loopback cold(std::move(cold_cfg), &tel);
  std::vector<std::string> cold_analyzes;
  const auto cold_start = std::chrono::steady_clock::now();
  for (std::size_t r = 0; r < rounds; ++r) {
    const std::string session = "cold" + std::to_string(r);
    (void)cold.request("{\"op\":\"load_network\",\"session\":\"" + session +
                       "\",\"text\":" + service::json_string(grown_texts[r]) +
                       "}");
    cold_analyzes.push_back(
        cold.request("{\"op\":\"analyze\",\"session\":\"" + session + "\"}"));
  }
  const double cold_ms = ms_since(cold_start);

  // ---- 2. warm: one session, add_flow + analyze per round.
  service::Loopback warm(service::ServiceConfig{}, &tel);
  (void)warm.request(R"({"op":"load_network","session":"w","text":)" +
                     service::json_string(model::serialize_flow_set(base)) +
                     "}");
  std::vector<std::string> warm_analyzes;
  const auto warm_start = std::chrono::steady_clock::now();
  for (std::size_t r = 0; r < rounds; ++r) {
    (void)warm.request(R"({"op":"add_flow","session":"w","flow":)" +
                       service::json_string(newcomer_line(r)) + "}");
    warm_analyzes.push_back(warm.request(R"({"op":"analyze","session":"w"})"));
  }
  const double warm_ms = ms_since(warm_start);

  // ---- 3. memo: unchanged session, repeated analyze.
  std::size_t memo_hits = 0;
  const auto memo_start = std::chrono::steady_clock::now();
  for (std::size_t r = 0; r < rounds; ++r) {
    const std::string response =
        warm.request(R"({"op":"analyze","session":"w"})");
    if (response.find("\"cached\":true") != std::string::npos) ++memo_hits;
  }
  const double memo_ms = ms_since(memo_start);

  const std::size_t cold_passes = total_passes(cold_analyzes);
  const std::size_t warm_passes = total_passes(warm_analyzes);
  const double cold_rps = 2.0 * static_cast<double>(rounds) / (cold_ms / 1e3);
  const double warm_rps = 2.0 * static_cast<double>(rounds) / (warm_ms / 1e3);
  const double memo_rps = static_cast<double>(rounds) / (memo_ms / 1e3);

  TextTable t({"stream", "wall ms", "requests/s", "smax passes"});
  t.add_row({"cold (session per query)", format_fixed(cold_ms, 1),
             format_fixed(cold_rps, 0), std::to_string(cold_passes)});
  t.add_row({"warm (live session)", format_fixed(warm_ms, 1),
             format_fixed(warm_rps, 0), std::to_string(warm_passes)});
  t.add_row({"memo (unchanged session)", format_fixed(memo_ms, 1),
             format_fixed(memo_rps, 0), "0"});
  std::printf("%s", t.to_string().c_str());

  // Correctness gates (deterministic on every host): both streams answer
  // every request, the round-r bounds agree byte for byte, the warm
  // stream saves engine passes, and the memo stream never re-analyzes.
  bool bounds_identical =
      all_ok(cold_analyzes) && all_ok(warm_analyzes) &&
      cold_analyzes.size() == warm_analyzes.size();
  for (std::size_t r = 0; bounds_identical && r < rounds; ++r)
    bounds_identical =
        bounds_region(cold_analyzes[r]) == bounds_region(warm_analyzes[r]);
  // A converged analyze needs at least 2 passes (one that changes rows,
  // one that confirms).  When the cold stream already sits at that floor
  // there is nothing for the warm start to save, so smoke-sized runs only
  // require "no extra passes"; above the floor the saving must be strict.
  const bool at_floor = cold_passes <= 2 * rounds;
  const bool warm_fewer =
      at_floor ? warm_passes <= cold_passes : warm_passes < cold_passes;
  const bool memo_free = memo_hits == rounds;
  const bool ok = bounds_identical && warm_fewer && memo_free;

  std::printf(
      "\nbounds identical across streams: %s; warm saved %zu of %zu passes%s; "
      "memo hits %zu/%zu%s\n",
      bounds_identical ? "yes" : "NO — BUG",
      cold_passes - (warm_fewer ? warm_passes : cold_passes), cold_passes,
      warm_fewer ? "" : " (EXPECTED STRICTLY FEWER — BUG)", memo_hits, rounds,
      memo_free ? "" : " (EXPECTED ALL — BUG)");

  if (json_path) {
    const auto b = [](bool v) { return v ? "true" : "false"; };
    std::ostringstream js;
    js << "{\"bench\":\"bench_service\",\"schema\":1,"
       << "\"workload\":{\"flows\":" << flows << ",\"nodes\":24"
       << ",\"rounds\":" << rounds << "},"
       << "\"wall_ms\":{\"cold\":" << cold_ms << ",\"warm\":" << warm_ms
       << ",\"memo\":" << memo_ms << "},"
       << "\"requests_per_sec\":{\"cold\":" << cold_rps
       << ",\"warm\":" << warm_rps << ",\"memo\":" << memo_rps << "},"
       << "\"checks\":{\"bounds_identical\":" << b(bounds_identical)
       << ",\"warm_fewer_passes\":" << b(warm_fewer)
       << ",\"memo_free\":" << b(memo_free)
       << ",\"warm_passes\":" << warm_passes
       << ",\"cold_passes\":" << cold_passes << ",\"ok\":" << b(ok)
       << "},\"metrics\":" << tel.metrics.to_json() << "}\n";
    std::ofstream out(*json_path);
    if (out) out << js.str();
    if (!out) {
      std::fprintf(stderr, "cannot write %s\n", json_path->c_str());
      return 2;
    }
    std::printf("json record written to %s\n", json_path->c_str());
  }
  return ok ? 0 : 1;
}
