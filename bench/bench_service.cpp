// Experiment: throughput of the long-lived analysis service (src/service/)
// against the one-shot alternative it replaces.
//
// Three request streams over the in-process loopback transport, all ending
// in the same analyzed sets:
//   1. cold     every round loads a fresh session and analyzes it from
//               scratch — the cost of a client that re-serialises its whole
//               network per query;
//   2. warm     one session, one add_flow + analyze per round — the
//               AnalysisCache warm-starts every re-analysis;
//   3. memo     repeated analyze of an unchanged session — answered from
//               the per-session memo without touching the engine.
//
// Wall times and requests/sec depend on the host; the pass counters and
// response bounds are deterministic, and the warm stream must converge in
// strictly fewer total Smax passes than the cold stream on any host.
//
// Options (base/options.h):
//   --flows N    base workload size (default 160)
//   --rounds N   add/analyze rounds per stream (default 24)
//   --json FILE  additionally write a machine-readable BENCH_service.json
//                record: {"bench","schema","workload","wall_ms",
//                "requests_per_sec","checks","metrics"} with "metrics"
//                the full registry dump (docs/observability.md).
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "base/json.h"
#include "base/options.h"
#include "base/rng.h"
#include "base/table.h"
#include "model/generators.h"
#include "model/serialize.h"
#include "obs/telemetry.h"
#include "service/loopback.h"
#include "service/protocol.h"

namespace {

using namespace tfa;

model::FlowSet make_workload(std::uint64_t seed, std::int32_t flows) {
  Rng rng(seed);
  model::RandomConfig cfg;
  cfg.nodes = 24;
  cfg.flows = flows;
  cfg.min_path = 2;
  cfg.max_path = 4;
  cfg.max_jitter = 8;
  cfg.max_utilisation = 0.5;
  return model::make_random(cfg, rng);
}

std::string newcomer_line(std::size_t round) {
  return "flow bench" + std::to_string(round) + " EF " +
         std::to_string(400 + 7 * round) + " 0 100000 path 0 1 costs 1";
}

double ms_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - start)
      .count();
}

/// Sum of result.stats.smax_passes over a stream's analyze responses.
std::size_t total_passes(const std::vector<std::string>& responses) {
  std::size_t passes = 0;
  for (const std::string& r : responses) {
    const auto doc = json_parse(r);
    if (!doc.has_value()) continue;
    const JsonValue* result = doc->find("result");
    const JsonValue* stats = result == nullptr ? nullptr : result->find("stats");
    const JsonValue* p = stats == nullptr ? nullptr : stats->find("smax_passes");
    if (p != nullptr) passes += static_cast<std::size_t>(p->number);
  }
  return passes;
}

/// The deterministic bounds region of an analyze response (everything
/// between the cached flag and the run-dependent stats block).
std::string bounds_region(const std::string& response) {
  const auto from = response.find("\"all_schedulable\"");
  const auto to = response.find(",\"stats\"");
  if (from == std::string::npos || to == std::string::npos || to < from)
    return response;
  return response.substr(from, to - from);
}

bool all_ok(const std::vector<std::string>& responses) {
  for (const std::string& r : responses)
    if (r.find("\"ok\":true") == std::string::npos) return false;
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  OptionParser opts(argc, argv);
  const auto json_path = opts.value("--json");
  const auto flows_opt = opts.value("--flows");
  const auto rounds_opt = opts.value("--rounds");
  if (!opts.error().empty() || !opts.unknown_options().empty() ||
      !opts.positionals().empty()) {
    std::fprintf(
        stderr, "usage: bench_service [--flows N] [--rounds N] [--json FILE]\n");
    return 2;
  }
  const std::int32_t flows = flows_opt ? std::atoi(flows_opt->c_str()) : 160;
  const std::size_t rounds =
      rounds_opt ? static_cast<std::size_t>(std::atoll(rounds_opt->c_str()))
                 : 24;
  if (flows <= 1 || rounds == 0) {
    std::fprintf(stderr, "bench_service: --flows must be > 1, --rounds > 0\n");
    return 2;
  }

  obs::Telemetry tel;
  const model::FlowSet base = make_workload(/*seed=*/7, flows);
  std::printf("workload: %zu flows, %d nodes, %zu rounds per stream\n\n",
              base.size(), base.network().node_count(), rounds);

  // The cold stream loads the round-r set from text, so build the grown
  // sets up front — serialisation cost is the client's, not the service's,
  // in both deployment styles.
  std::vector<std::string> grown_texts;
  {
    model::FlowSet grown = base;
    for (std::size_t r = 0; r < rounds; ++r) {
      const model::ParseResult one =
          model::parse_flow_set(model::serialize_flow_set(
              model::FlowSet(base.network())) + newcomer_line(r) + "\n");
      grown.add(one.flow_set->flow(FlowIndex{0}));
      grown_texts.push_back(model::serialize_flow_set(grown));
    }
  }

  // ---- 1. cold: fresh session per round.
  service::ServiceConfig cold_cfg;
  cold_cfg.max_sessions = rounds + 1;
  service::Loopback cold(std::move(cold_cfg), &tel);
  std::vector<std::string> cold_analyzes;
  const auto cold_start = std::chrono::steady_clock::now();
  for (std::size_t r = 0; r < rounds; ++r) {
    const std::string session = "cold" + std::to_string(r);
    (void)cold.request("{\"op\":\"load_network\",\"session\":\"" + session +
                       "\",\"text\":" + service::json_string(grown_texts[r]) +
                       "}");
    cold_analyzes.push_back(
        cold.request("{\"op\":\"analyze\",\"session\":\"" + session + "\"}"));
  }
  const double cold_ms = ms_since(cold_start);

  // ---- 2. warm: one session, add_flow + analyze per round.
  service::Loopback warm(service::ServiceConfig{}, &tel);
  (void)warm.request(R"({"op":"load_network","session":"w","text":)" +
                     service::json_string(model::serialize_flow_set(base)) +
                     "}");
  std::vector<std::string> warm_analyzes;
  const auto warm_start = std::chrono::steady_clock::now();
  for (std::size_t r = 0; r < rounds; ++r) {
    (void)warm.request(R"({"op":"add_flow","session":"w","flow":)" +
                       service::json_string(newcomer_line(r)) + "}");
    warm_analyzes.push_back(warm.request(R"({"op":"analyze","session":"w"})"));
  }
  const double warm_ms = ms_since(warm_start);

  // ---- 3. memo: unchanged session, repeated analyze.
  std::size_t memo_hits = 0;
  const auto memo_start = std::chrono::steady_clock::now();
  for (std::size_t r = 0; r < rounds; ++r) {
    const std::string response =
        warm.request(R"({"op":"analyze","session":"w"})");
    if (response.find("\"cached\":true") != std::string::npos) ++memo_hits;
  }
  const double memo_ms = ms_since(memo_start);

  const std::size_t cold_passes = total_passes(cold_analyzes);
  const std::size_t warm_passes = total_passes(warm_analyzes);
  const double cold_rps = 2.0 * static_cast<double>(rounds) / (cold_ms / 1e3);
  const double warm_rps = 2.0 * static_cast<double>(rounds) / (warm_ms / 1e3);
  const double memo_rps = static_cast<double>(rounds) / (memo_ms / 1e3);

  TextTable t({"stream", "wall ms", "requests/s", "smax passes"});
  t.add_row({"cold (session per query)", format_fixed(cold_ms, 1),
             format_fixed(cold_rps, 0), std::to_string(cold_passes)});
  t.add_row({"warm (live session)", format_fixed(warm_ms, 1),
             format_fixed(warm_rps, 0), std::to_string(warm_passes)});
  t.add_row({"memo (unchanged session)", format_fixed(memo_ms, 1),
             format_fixed(memo_rps, 0), "0"});
  std::printf("%s", t.to_string().c_str());

  // Correctness gates (deterministic on every host): both streams answer
  // every request, the round-r bounds agree byte for byte, the warm
  // stream saves engine passes, and the memo stream never re-analyzes.
  bool bounds_identical =
      all_ok(cold_analyzes) && all_ok(warm_analyzes) &&
      cold_analyzes.size() == warm_analyzes.size();
  for (std::size_t r = 0; bounds_identical && r < rounds; ++r)
    bounds_identical =
        bounds_region(cold_analyzes[r]) == bounds_region(warm_analyzes[r]);
  // A converged analyze needs at least 2 passes (one that changes rows,
  // one that confirms).  When the cold stream already sits at that floor
  // there is nothing for the warm start to save, so smoke-sized runs only
  // require "no extra passes"; above the floor the saving must be strict.
  const bool at_floor = cold_passes <= 2 * rounds;
  const bool warm_fewer =
      at_floor ? warm_passes <= cold_passes : warm_passes < cold_passes;
  const bool memo_free = memo_hits == rounds;
  const bool ok = bounds_identical && warm_fewer && memo_free;

  std::printf(
      "\nbounds identical across streams: %s; warm saved %zu of %zu passes%s; "
      "memo hits %zu/%zu%s\n",
      bounds_identical ? "yes" : "NO — BUG",
      cold_passes - (warm_fewer ? warm_passes : cold_passes), cold_passes,
      warm_fewer ? "" : " (EXPECTED STRICTLY FEWER — BUG)", memo_hits, rounds,
      memo_free ? "" : " (EXPECTED ALL — BUG)");

  if (json_path) {
    const auto b = [](bool v) { return v ? "true" : "false"; };
    std::ostringstream js;
    js << "{\"bench\":\"bench_service\",\"schema\":1,"
       << "\"workload\":{\"flows\":" << flows << ",\"nodes\":24"
       << ",\"rounds\":" << rounds << "},"
       << "\"wall_ms\":{\"cold\":" << cold_ms << ",\"warm\":" << warm_ms
       << ",\"memo\":" << memo_ms << "},"
       << "\"requests_per_sec\":{\"cold\":" << cold_rps
       << ",\"warm\":" << warm_rps << ",\"memo\":" << memo_rps << "},"
       << "\"checks\":{\"bounds_identical\":" << b(bounds_identical)
       << ",\"warm_fewer_passes\":" << b(warm_fewer)
       << ",\"memo_free\":" << b(memo_free)
       << ",\"warm_passes\":" << warm_passes
       << ",\"cold_passes\":" << cold_passes << ",\"ok\":" << b(ok)
       << "},\"metrics\":" << tel.metrics.to_json() << "}\n";
    std::ofstream out(*json_path);
    if (out) out << js.str();
    if (!out) {
      std::fprintf(stderr, "cannot write %s\n", json_path->c_str());
      return 2;
    }
    std::printf("json record written to %s\n", json_path->c_str());
  }
  return ok ? 0 : 1;
}
