// Experiment: throughput of the long-lived analysis service (src/service/)
// against the one-shot alternative it replaces.
//
// Three request streams over the in-process loopback transport, all ending
// in the same analyzed sets:
//   1. cold     every round loads a fresh session and analyzes it from
//               scratch — the cost of a client that re-serialises its whole
//               network per query;
//   2. warm     one session, one add_flow + analyze per round — the
//               AnalysisCache warm-starts every re-analysis;
//   3. memo     repeated analyze of an unchanged session — answered from
//               the per-session memo without touching the engine.
//
// Wall times and requests/sec depend on the host; the pass counters and
// response bounds are deterministic, and the warm stream must converge in
// strictly fewer total Smax passes than the cold stream on any host.
//
// A second mode exercises the socket transport end to end:
//
//   --mode load  closed-loop load generator against a live SocketServer
//                (loopback TCP, ephemeral port): N client threads, each
//                with its own connection, drive M shared sessions with a
//                mixed request stream (memo-hit analyzes, add/analyze/
//                remove perturbations, metrics probes) and record every
//                request's round-trip latency.  Reports throughput and
//                p50/p95/p99/max latency; the correctness gates require
//                every response to be a success envelope and no
//                connection to be shed.
//
// Options (base/options.h):
//   --mode M     "streams" (default) or "load"
//   --flows N    base workload size (default 160; load default 24)
//   --rounds N   streams: add/analyze rounds per stream (default 24)
//   --conns N    load: client connections/threads (default 8)
//   --sessions N load: shared sessions driven by the clients (default 4)
//   --requests N load: requests per connection (default 240)
//   --executors N load: server executor threads (default 2)
//   --json FILE  additionally write a machine-readable record
//                (schema 1 for streams — {"bench","schema","workload",
//                "wall_ms","requests_per_sec","checks","metrics"} with
//                "metrics" the full registry dump — schema 2 for load,
//                documented in docs/performance.md).
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <mutex>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "base/json.h"
#include "base/net.h"
#include "base/options.h"
#include "base/rng.h"
#include "base/table.h"
#include "model/generators.h"
#include "model/serialize.h"
#include "obs/telemetry.h"
#include "service/loopback.h"
#include "service/protocol.h"
#include "service/socket_transport.h"

namespace {

using namespace tfa;

model::FlowSet make_workload(std::uint64_t seed, std::int32_t flows) {
  Rng rng(seed);
  model::RandomConfig cfg;
  cfg.nodes = 24;
  cfg.flows = flows;
  cfg.min_path = 2;
  cfg.max_path = 4;
  cfg.max_jitter = 8;
  cfg.max_utilisation = 0.5;
  return model::make_random(cfg, rng);
}

std::string newcomer_line(std::size_t round) {
  return "flow bench" + std::to_string(round) + " EF " +
         std::to_string(400 + 7 * round) + " 0 100000 path 0 1 costs 1";
}

double ms_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - start)
      .count();
}

/// Sum of result.stats.smax_passes over a stream's analyze responses.
std::size_t total_passes(const std::vector<std::string>& responses) {
  std::size_t passes = 0;
  for (const std::string& r : responses) {
    const auto doc = json_parse(r);
    if (!doc.has_value()) continue;
    const JsonValue* result = doc->find("result");
    const JsonValue* stats = result == nullptr ? nullptr : result->find("stats");
    const JsonValue* p = stats == nullptr ? nullptr : stats->find("smax_passes");
    if (p != nullptr) passes += static_cast<std::size_t>(p->number);
  }
  return passes;
}

/// The deterministic bounds region of an analyze response (everything
/// between the cached flag and the run-dependent stats block).
std::string bounds_region(const std::string& response) {
  const auto from = response.find("\"all_schedulable\"");
  const auto to = response.find(",\"stats\"");
  if (from == std::string::npos || to == std::string::npos || to < from)
    return response;
  return response.substr(from, to - from);
}

bool all_ok(const std::vector<std::string>& responses) {
  for (const std::string& r : responses)
    if (r.find("\"ok\":true") == std::string::npos) return false;
  return true;
}

/// `v` must be sorted ascending; nearest-rank percentile in the same
/// unit as the samples.
double percentile(const std::vector<double>& v, double pct) {
  if (v.empty()) return 0.0;
  const auto idx = static_cast<std::size_t>(
      pct / 100.0 * static_cast<double>(v.size() - 1) + 0.5);
  return v[std::min(idx, v.size() - 1)];
}

/// One load-generator client: a closed loop over its own connection,
/// cycling memo analyzes, an add/analyze/remove/analyze perturbation and
/// a metrics probe across the shared sessions.
struct LoadClient {
  std::size_t id = 0;
  std::size_t sessions = 0;
  std::size_t requests = 0;

  std::vector<double> latency_us;  ///< One sample per request.
  std::size_t failures = 0;        ///< Non-success envelopes.
  std::size_t cached = 0;          ///< Memo-hit analyze responses.
  bool transport_ok = true;        ///< Socket stayed up to the end.

  void run(std::uint16_t port) {
    std::string error;
    net::LineClient client(net::connect_tcp(port, &error));
    if (!client.connected()) {
      transport_ok = false;
      return;
    }
    for (std::size_t r = 0; r < requests; ++r) {
      const std::string session =
          "load" + std::to_string((id + r) % sessions);
      const std::string flow_name =
          "ld_" + std::to_string(id) + "_" + std::to_string(r);
      std::string line;
      switch (r % 6) {
        case 1:
          line = R"({"op":"add_flow","session":)" +
                 service::json_string(session) + ",\"flow\":" +
                 service::json_string("flow " + flow_name +
                                      " EF 400 0 100000 path 0 1 costs 1") +
                 "}";
          break;
        case 3:
          // Remove the flow added two requests ago (same session: the
          // cycle advances the session index by 2 in between).
          line = R"({"op":"remove_flow","session":)" +
                 service::json_string("load" +
                                      std::to_string((id + r - 2) % sessions)) +
                 ",\"name\":" +
                 service::json_string("ld_" + std::to_string(id) + "_" +
                                      std::to_string(r - 2)) +
                 "}";
          break;
        case 5:
          line = R"({"op":"metrics"})";
          break;
        default:
          line = R"({"op":"analyze","session":)" +
                 service::json_string(session) + "}";
          break;
      }
      const auto start = std::chrono::steady_clock::now();
      if (!client.send_line(line)) {
        transport_ok = false;
        return;
      }
      const std::optional<std::string> response = client.read_line();
      if (!response.has_value()) {
        transport_ok = false;
        return;
      }
      latency_us.push_back(
          std::chrono::duration<double, std::micro>(
              std::chrono::steady_clock::now() - start)
              .count());
      if (response->find("\"ok\":true") == std::string::npos) ++failures;
      if (response->find("\"cached\":true") != std::string::npos) ++cached;
    }
  }
};

int run_load_mode(std::int32_t flows, std::size_t conns, std::size_t sessions,
                  std::size_t requests, std::size_t executors,
                  const std::optional<std::string>& json_path) {
  service::SocketServerConfig server_cfg;
  server_cfg.max_conns = conns + 1;
  server_cfg.executors = executors;
  server_cfg.service.max_sessions = sessions;
  service::SocketServer server(std::move(server_cfg));
  std::string error;
  if (!server.start(&error)) {
    std::fprintf(stderr, "bench_service: %s\n", error.c_str());
    return 2;
  }

  // Stage the shared sessions over one setup connection, outside the
  // measured window.
  const std::string text =
      model::serialize_flow_set(make_workload(/*seed=*/7, flows));
  {
    net::LineClient setup(net::connect_tcp(server.port(), &error));
    if (!setup.connected()) {
      std::fprintf(stderr, "bench_service: %s\n", error.c_str());
      return 2;
    }
    for (std::size_t s = 0; s < sessions; ++s) {
      (void)setup.send_line(
          R"({"op":"load_network","session":)" +
          service::json_string("load" + std::to_string(s)) +
          ",\"text\":" + service::json_string(text) + "}");
      const auto response = setup.read_line();
      if (!response.has_value() ||
          response->find("\"ok\":true") == std::string::npos) {
        std::fprintf(stderr, "bench_service: session setup failed: %s\n",
                     response.value_or("<eof>").c_str());
        return 2;
      }
    }
  }

  std::printf(
      "load: %zu connection(s) x %zu request(s) over %zu shared "
      "session(s), %d flows each, %zu executor(s)\n\n",
      conns, requests, sessions, flows, executors);

  std::vector<LoadClient> clients(conns);
  for (std::size_t i = 0; i < conns; ++i) {
    clients[i].id = i;
    clients[i].sessions = sessions;
    clients[i].requests = requests;
  }
  const auto wall_start = std::chrono::steady_clock::now();
  {
    std::vector<std::thread> threads;
    threads.reserve(conns);
    for (LoadClient& c : clients)
      threads.emplace_back([&c, &server] { c.run(server.port()); });
    for (std::thread& t : threads) t.join();
  }
  const double wall_ms = ms_since(wall_start);
  server.stop();

  std::vector<double> latency_us;
  std::size_t failures = 0;
  std::size_t cached = 0;
  bool transport_ok = true;
  for (const LoadClient& c : clients) {
    latency_us.insert(latency_us.end(), c.latency_us.begin(),
                      c.latency_us.end());
    failures += c.failures;
    cached += c.cached;
    transport_ok = transport_ok && c.transport_ok;
  }
  std::sort(latency_us.begin(), latency_us.end());
  const std::size_t expected = conns * requests;
  const double rps = static_cast<double>(latency_us.size()) / (wall_ms / 1e3);
  const double p50 = percentile(latency_us, 50);
  const double p95 = percentile(latency_us, 95);
  const double p99 = percentile(latency_us, 99);
  const double lat_max = latency_us.empty() ? 0.0 : latency_us.back();

  TextTable t({"metric", "value"});
  t.add_row({"wall ms", format_fixed(wall_ms, 1)});
  t.add_row({"requests/s", format_fixed(rps, 0)});
  t.add_row({"latency p50 us", format_fixed(p50, 0)});
  t.add_row({"latency p95 us", format_fixed(p95, 0)});
  t.add_row({"latency p99 us", format_fixed(p99, 0)});
  t.add_row({"latency max us", format_fixed(lat_max, 0)});
  std::printf("%s", t.to_string().c_str());

  const bool complete = transport_ok && latency_us.size() == expected;
  const bool no_failures = failures == 0;
  const bool none_shed = server.connections_shed() == 0;
  const bool ok = complete && no_failures && none_shed;
  std::printf(
      "\n%zu/%zu answered (%zu failure(s)), %zu memo hit(s); "
      "%llu accepted, %llu shed — %s\n",
      latency_us.size(), expected, failures, cached,
      static_cast<unsigned long long>(server.connections_accepted()),
      static_cast<unsigned long long>(server.connections_shed()),
      ok ? "ok" : "BUG");

  if (json_path) {
    const auto b = [](bool v) { return v ? "true" : "false"; };
    std::ostringstream js;
    js << "{\"bench\":\"bench_service\",\"schema\":2,\"mode\":\"load\","
       << "\"workload\":{\"connections\":" << conns
       << ",\"sessions\":" << sessions
       << ",\"requests_per_connection\":" << requests
       << ",\"flows\":" << flows << ",\"executors\":" << executors << "},"
       << "\"wall_ms\":" << wall_ms << ",\"requests_per_sec\":" << rps << ","
       << "\"latency_us\":{\"p50\":" << p50 << ",\"p95\":" << p95
       << ",\"p99\":" << p99 << ",\"max\":" << lat_max << "},"
       << "\"transport\":{\"accepted\":" << server.connections_accepted()
       << ",\"shed\":" << server.connections_shed()
       << ",\"requests\":" << server.requests_served()
       << ",\"memo_hits\":" << cached << "},"
       << "\"checks\":{\"complete\":" << b(complete)
       << ",\"no_failures\":" << b(no_failures)
       << ",\"none_shed\":" << b(none_shed) << ",\"ok\":" << b(ok) << "}}\n";
    std::ofstream out(*json_path);
    if (out) out << js.str();
    if (!out) {
      std::fprintf(stderr, "cannot write %s\n", json_path->c_str());
      return 2;
    }
    std::printf("json record written to %s\n", json_path->c_str());
  }
  return ok ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  OptionParser opts(argc, argv);
  const auto json_path = opts.value("--json");
  const auto mode_opt = opts.value("--mode");
  const auto flows_opt = opts.value("--flows");
  const auto rounds_opt = opts.value("--rounds");
  const auto conns_opt = opts.value("--conns");
  const auto sessions_opt = opts.value("--sessions");
  const auto requests_opt = opts.value("--requests");
  const auto executors_opt = opts.value("--executors");
  const std::string mode = mode_opt.value_or("streams");
  if (!opts.error().empty() || !opts.unknown_options().empty() ||
      !opts.positionals().empty() ||
      (mode != "streams" && mode != "load")) {
    std::fprintf(stderr,
                 "usage: bench_service [--mode streams|load] [--flows N] "
                 "[--rounds N]\n"
                 "                     [--conns N] [--sessions N] "
                 "[--requests N] [--executors N]\n"
                 "                     [--json FILE]\n");
    return 2;
  }
  const auto size_opt = [](const std::optional<std::string>& o,
                           std::size_t fallback) {
    return o ? static_cast<std::size_t>(std::atoll(o->c_str())) : fallback;
  };
  if (mode == "load") {
    const std::int32_t flows =
        flows_opt ? std::atoi(flows_opt->c_str()) : 24;
    const std::size_t conns = size_opt(conns_opt, 8);
    const std::size_t sessions = size_opt(sessions_opt, 4);
    const std::size_t requests = size_opt(requests_opt, 240);
    const std::size_t executors = size_opt(executors_opt, 2);
    if (flows <= 1 || conns == 0 || sessions == 0 || requests == 0) {
      std::fprintf(stderr,
                   "bench_service: --flows must be > 1; --conns, --sessions "
                   "and --requests > 0\n");
      return 2;
    }
    return run_load_mode(flows, conns, sessions, requests, executors,
                         json_path);
  }
  const std::int32_t flows = flows_opt ? std::atoi(flows_opt->c_str()) : 160;
  const std::size_t rounds = size_opt(rounds_opt, 24);
  if (flows <= 1 || rounds == 0) {
    std::fprintf(stderr, "bench_service: --flows must be > 1, --rounds > 0\n");
    return 2;
  }

  obs::Telemetry tel;
  const model::FlowSet base = make_workload(/*seed=*/7, flows);
  std::printf("workload: %zu flows, %d nodes, %zu rounds per stream\n\n",
              base.size(), base.network().node_count(), rounds);

  // The cold stream loads the round-r set from text, so build the grown
  // sets up front — serialisation cost is the client's, not the service's,
  // in both deployment styles.
  std::vector<std::string> grown_texts;
  {
    model::FlowSet grown = base;
    for (std::size_t r = 0; r < rounds; ++r) {
      const model::ParseResult one =
          model::parse_flow_set(model::serialize_flow_set(
              model::FlowSet(base.network())) + newcomer_line(r) + "\n");
      grown.add(one.flow_set->flow(FlowIndex{0}));
      grown_texts.push_back(model::serialize_flow_set(grown));
    }
  }

  // ---- 1. cold: fresh session per round.
  service::ServiceConfig cold_cfg;
  cold_cfg.max_sessions = rounds + 1;
  service::Loopback cold(std::move(cold_cfg), &tel);
  std::vector<std::string> cold_analyzes;
  const auto cold_start = std::chrono::steady_clock::now();
  for (std::size_t r = 0; r < rounds; ++r) {
    const std::string session = "cold" + std::to_string(r);
    (void)cold.request("{\"op\":\"load_network\",\"session\":\"" + session +
                       "\",\"text\":" + service::json_string(grown_texts[r]) +
                       "}");
    cold_analyzes.push_back(
        cold.request("{\"op\":\"analyze\",\"session\":\"" + session + "\"}"));
  }
  const double cold_ms = ms_since(cold_start);

  // ---- 2. warm: one session, add_flow + analyze per round.
  service::Loopback warm(service::ServiceConfig{}, &tel);
  (void)warm.request(R"({"op":"load_network","session":"w","text":)" +
                     service::json_string(model::serialize_flow_set(base)) +
                     "}");
  std::vector<std::string> warm_analyzes;
  const auto warm_start = std::chrono::steady_clock::now();
  for (std::size_t r = 0; r < rounds; ++r) {
    (void)warm.request(R"({"op":"add_flow","session":"w","flow":)" +
                       service::json_string(newcomer_line(r)) + "}");
    warm_analyzes.push_back(warm.request(R"({"op":"analyze","session":"w"})"));
  }
  const double warm_ms = ms_since(warm_start);

  // ---- 3. memo: unchanged session, repeated analyze.
  std::size_t memo_hits = 0;
  const auto memo_start = std::chrono::steady_clock::now();
  for (std::size_t r = 0; r < rounds; ++r) {
    const std::string response =
        warm.request(R"({"op":"analyze","session":"w"})");
    if (response.find("\"cached\":true") != std::string::npos) ++memo_hits;
  }
  const double memo_ms = ms_since(memo_start);

  const std::size_t cold_passes = total_passes(cold_analyzes);
  const std::size_t warm_passes = total_passes(warm_analyzes);
  const double cold_rps = 2.0 * static_cast<double>(rounds) / (cold_ms / 1e3);
  const double warm_rps = 2.0 * static_cast<double>(rounds) / (warm_ms / 1e3);
  const double memo_rps = static_cast<double>(rounds) / (memo_ms / 1e3);

  TextTable t({"stream", "wall ms", "requests/s", "smax passes"});
  t.add_row({"cold (session per query)", format_fixed(cold_ms, 1),
             format_fixed(cold_rps, 0), std::to_string(cold_passes)});
  t.add_row({"warm (live session)", format_fixed(warm_ms, 1),
             format_fixed(warm_rps, 0), std::to_string(warm_passes)});
  t.add_row({"memo (unchanged session)", format_fixed(memo_ms, 1),
             format_fixed(memo_rps, 0), "0"});
  std::printf("%s", t.to_string().c_str());

  // Correctness gates (deterministic on every host): both streams answer
  // every request, the round-r bounds agree byte for byte, the warm
  // stream saves engine passes, and the memo stream never re-analyzes.
  bool bounds_identical =
      all_ok(cold_analyzes) && all_ok(warm_analyzes) &&
      cold_analyzes.size() == warm_analyzes.size();
  for (std::size_t r = 0; bounds_identical && r < rounds; ++r)
    bounds_identical =
        bounds_region(cold_analyzes[r]) == bounds_region(warm_analyzes[r]);
  // A converged analyze needs at least 2 passes (one that changes rows,
  // one that confirms).  When the cold stream already sits at that floor
  // there is nothing for the warm start to save, so smoke-sized runs only
  // require "no extra passes"; above the floor the saving must be strict.
  const bool at_floor = cold_passes <= 2 * rounds;
  const bool warm_fewer =
      at_floor ? warm_passes <= cold_passes : warm_passes < cold_passes;
  const bool memo_free = memo_hits == rounds;
  const bool ok = bounds_identical && warm_fewer && memo_free;

  std::printf(
      "\nbounds identical across streams: %s; warm saved %zu of %zu passes%s; "
      "memo hits %zu/%zu%s\n",
      bounds_identical ? "yes" : "NO — BUG",
      cold_passes - (warm_fewer ? warm_passes : cold_passes), cold_passes,
      warm_fewer ? "" : " (EXPECTED STRICTLY FEWER — BUG)", memo_hits, rounds,
      memo_free ? "" : " (EXPECTED ALL — BUG)");

  if (json_path) {
    const auto b = [](bool v) { return v ? "true" : "false"; };
    std::ostringstream js;
    js << "{\"bench\":\"bench_service\",\"schema\":1,"
       << "\"workload\":{\"flows\":" << flows << ",\"nodes\":24"
       << ",\"rounds\":" << rounds << "},"
       << "\"wall_ms\":{\"cold\":" << cold_ms << ",\"warm\":" << warm_ms
       << ",\"memo\":" << memo_ms << "},"
       << "\"requests_per_sec\":{\"cold\":" << cold_rps
       << ",\"warm\":" << warm_rps << ",\"memo\":" << memo_rps << "},"
       << "\"checks\":{\"bounds_identical\":" << b(bounds_identical)
       << ",\"warm_fewer_passes\":" << b(warm_fewer)
       << ",\"memo_free\":" << b(memo_free)
       << ",\"warm_passes\":" << warm_passes
       << ",\"cold_passes\":" << cold_passes << ",\"ok\":" << b(ok)
       << "},\"metrics\":" << tel.metrics.to_json() << "}\n";
    std::ofstream out(*json_path);
    if (out) out << js.str();
    if (!out) {
      std::fprintf(stderr, "cannot write %s\n", json_path->c_str());
      return 2;
    }
    std::printf("json record written to %s\n", json_path->c_str());
  }
  return ok ? 0 : 1;
}
