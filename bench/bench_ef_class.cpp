// Experiments F3/X3: the DiffServ EF class (paper Section 6, Figure 3).
//
// Part 1 reproduces the Figure-3 router behaviour: EF served at fixed
// priority over a WFQ aggregate, FIFO within EF, non-preemptive service.
// Part 2 sweeps the maximum non-EF packet size and reports the Lemma-4
// delta, the Property-3 bound, and the worst response observed under the
// DiffServ router simulation (Property 2 + delta vs measured reality).
#include <cstdio>
#include <string>

#include "base/table.h"
#include "diffserv/discipline.h"
#include "diffserv/ef_analysis.h"
#include "model/paper_example.h"
#include "sim/network_sim.h"
#include "trajectory/analysis.h"

namespace {

using namespace tfa;

/// The paper's example as the EF class plus bulk background of the given
/// packet size crossing the busiest core nodes.
model::FlowSet example_with_background(Duration bulk_cost) {
  model::FlowSet set = model::paper_example();
  if (bulk_cost > 0) {
    set.add(model::SporadicFlow("bulk-af", model::Path{2, 3, 4, 7}, 400,
                                bulk_cost, 0, 100000,
                                model::ServiceClass::kAssured1));
    set.add(model::SporadicFlow("bulk-be", model::Path{9, 10, 7, 6}, 400,
                                bulk_cost, 0, 100000,
                                model::ServiceClass::kBestEffort));
  }
  return set;
}

}  // namespace

int main() {
  std::printf("== F3: DiffServ router behaviour (fixed priority + WFQ, "
              "Figure 3) ==\n\n");
  {
    // One node, one EF flow, AF1 and BE backlog: EF must cut the line,
    // AF1 must out-share BE 4:1.
    model::FlowSet set(model::Network(1, 1, 1));
    set.add(model::SporadicFlow("voice", model::Path{0}, 40, 2, 0, 1000));
    set.add(model::SporadicFlow("af1", model::Path{0}, 20, 5, 0, 100000,
                                model::ServiceClass::kAssured1));
    set.add(model::SporadicFlow("be", model::Path{0}, 20, 5, 0, 100000,
                                model::ServiceClass::kBestEffort));
    sim::SimConfig cfg;
    cfg.pattern = sim::ArrivalPattern::kSynchronousBurst;
    sim::NetworkSim sim(set, cfg, diffserv::make_diffserv);
    sim.run();
    TextTable t({"flow", "class", "worst response", "mean response"});
    for (std::size_t i = 0; i < set.size(); ++i) {
      const auto& f = set.flow(static_cast<FlowIndex>(i));
      t.add_row({f.name(), model::to_string(f.service_class()),
                 format_duration(sim.stats()[i].worst),
                 format_fixed(sim.stats()[i].mean(), 1)});
    }
    std::printf("%s", t.to_string().c_str());
    std::printf("EF sees only residual blocking; AF1 receives ~4x the "
                "best-effort share (WFQ weights 4:1).\n\n");
  }

  std::printf("== X3: Property 3 vs non-EF packet size (paper example as "
              "the EF class) ==\n\n");
  TextTable t({"non-EF C", "flow", "delta_i", "P3 bound", "P2 bound",
               "observed (DiffServ sim)", "sound"});
  for (const Duration bulk : {0, 4, 8, 16, 32}) {
    const model::FlowSet set = example_with_background(bulk);
    sim::SearchConfig scfg;
    scfg.random_runs = 24;
    const diffserv::EfValidation v = diffserv::validate_ef(set, {}, scfg);
    const trajectory::Result p2 =
        trajectory::analyze(model::paper_example());

    for (const auto& b : v.analysis.bounds) {
      const auto i = static_cast<std::size_t>(b.flow);
      t.add_row({std::to_string(bulk), set.flow(b.flow).name(),
                 format_duration(b.delta), format_duration(b.response),
                 format_duration(p2.bounds[i].response),
                 format_duration(v.observed.stats[i].worst),
                 v.observed.stats[i].worst <= b.response ? "yes"
                                                         : "VIOLATED"});
    }
  }
  std::printf("%s\n", t.to_string().c_str());
  std::printf("delta_i grows with the largest lower-priority packet "
              "(Lemma 4): one residual\nblocking per hop.  P3 = P2 + "
              "delta_i; the observed column must never exceed P3.\n");
  return 0;
}
