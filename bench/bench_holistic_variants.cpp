// Experiment X5: ablation of the holistic baseline's policy knobs.  The
// paper cites "the holistic approach" without formulas; this bench shows
// how much the unstated choices matter, which is why EXPERIMENTS.md
// reports our holistic row alongside the paper's.
#include <cstdio>
#include <string>

#include "base/table.h"
#include "holistic/holistic.h"
#include "model/generators.h"
#include "model/paper_example.h"
#include "trajectory/analysis.h"

namespace {

using namespace tfa;

const char* jitter_name(holistic::JitterPropagation j) {
  return j == holistic::JitterPropagation::kResponseMinusCost ? "J += R-C"
                                                              : "J += R";
}

const char* bound_name(holistic::NodeBound b) {
  return b == holistic::NodeBound::kArrivalSweep ? "arrival sweep"
                                                 : "busy period";
}

void sweep(const std::string& family, const model::FlowSet& set) {
  std::printf("-- %s --\n", family.c_str());
  TextTable t({"jitter rule", "node bound", "sum of bounds",
               "max bound", "vs trajectory"});
  const trajectory::Result tr = trajectory::analyze(set);
  Duration tr_sum = 0;
  for (const auto& b : tr.bounds) tr_sum += b.response;

  for (const auto jr : {holistic::JitterPropagation::kResponseMinusCost,
                        holistic::JitterPropagation::kFullResponse}) {
    for (const auto nb :
         {holistic::NodeBound::kArrivalSweep, holistic::NodeBound::kBusyPeriod}) {
      holistic::Config cfg;
      cfg.jitter_rule = jr;
      cfg.node_bound = nb;
      const holistic::Result r = holistic::analyze(set, cfg);
      Duration sum = 0, mx = 0;
      bool finite = true;
      for (const auto& b : r.bounds) {
        if (is_infinite(b.response)) finite = false;
        sum += b.response;
        mx = std::max(mx, b.response);
      }
      t.add_row({jitter_name(jr), bound_name(nb),
                 finite ? format_duration(sum) : "unbounded",
                 format_duration(mx),
                 finite ? "x" + format_fixed(static_cast<double>(sum) /
                                                 static_cast<double>(tr_sum),
                                             2)
                        : "-"});
    }
  }
  std::printf("%s\n", t.to_string().c_str());
}

}  // namespace

int main() {
  std::printf("== X5: holistic policy-variant ablation ==\n\n");
  sweep("paper example", model::paper_example());

  model::ParkingLotConfig plc;
  plc.hops = 8;
  plc.cross_flows = 7;
  plc.cross_span = 2;
  plc.period = 160;
  sweep("parking lot 8x7", model::make_parking_lot(plc));

  model::RingConfig rc;
  rc.nodes = 8;
  rc.flows = 8;
  rc.span = 4;
  sweep("ring 8x8", model::make_ring(rc));

  std::printf("Every variant is sound but strictly dominated by the "
              "trajectory bound\n(column 'vs trajectory' is the ratio of "
              "summed response bounds).\n");
  return 0;
}
