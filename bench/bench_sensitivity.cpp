// Experiment X7 (extension): capacity headroom of the paper's example —
// what an operator can actually do with the certified slack.  For every
// flow: deadline slack, the largest per-node cost increase that keeps the
// whole set certified, and the smallest period; plus the number of extra
// paper-like flows the busiest segment still admits.
#include <cstdio>
#include <string>

#include "admission/sensitivity.h"
#include "base/table.h"
#include "model/paper_example.h"

int main() {
  using namespace tfa;
  const model::FlowSet set = model::paper_example();

  std::printf("== X7: sensitivity of the paper example under the "
              "trajectory analysis ==\n\n");

  const auto slacks = admission::deadline_slacks(set);
  TextTable t({"flow", "deadline", "bound", "slack", "max extra C per node",
               "min period"});
  for (std::size_t i = 0; i < set.size(); ++i) {
    const auto fi = static_cast<FlowIndex>(i);
    t.add_row({set.flow(fi).name(),
               std::to_string(set.flow(fi).deadline()),
               format_duration(slacks[i].response),
               format_duration(slacks[i].slack),
               format_duration(admission::max_extra_cost(set, fi)),
               format_duration(admission::min_period(set, fi))});
  }
  std::printf("%s\n", t.to_string().c_str());

  // How many additional tau5-like flows fit before some deadline breaks?
  const model::SporadicFlow probe("extra", model::Path{2, 3, 4, 7, 8}, 36, 4,
                                  0, 50);
  const std::size_t clones = admission::max_clones(set, probe);
  std::printf("additional tau5-like flows admissible on the 2-3-4-7 core: "
              "%zu\n\n", clones);

  std::printf("Reading: the example is provisioned close to its deadlines — "
              "1-2 ticks of\nper-node cost headroom per flow.  Every number "
              "is the exact breaking point\n(binary search over the monotone "
              "trajectory bound).\n");
  return 0;
}
