// Experiment X8 (extension): end-to-end *jitter* — the paper's second QoS
// parameter (Definition 2: R_i minus the best-case response).  For the
// paper example under increasing crossing load we print the analytic
// jitter bound next to the worst jitter the simulator observes, for the
// trajectory and holistic analyses.
#include <cstdio>
#include <string>

#include "base/table.h"
#include "holistic/holistic.h"
#include "model/flow_set.h"
#include "model/paper_example.h"
#include "sim/worst_case_search.h"
#include "trajectory/analysis.h"

namespace {

using namespace tfa;

/// Paper example plus `extra` additional flows over the 2-3-4 core.
model::FlowSet loaded_example(int extra) {
  model::FlowSet set = model::paper_example();
  for (int k = 0; k < extra; ++k)
    set.add(model::SporadicFlow("load" + std::to_string(k),
                                model::Path{2, 3, 4}, 72, 4, 0, 100000));
  return set;
}

}  // namespace

int main() {
  std::printf("== X8: end-to-end jitter (Definition 2) vs crossing load ==\n"
              "tracked flow: tau3 (longest path)\n\n");

  TextTable t({"extra flows", "core util", "traj R", "traj jitter",
               "holistic jitter", "observed jitter", "sound"});
  for (const int extra : {0, 1, 2, 3, 4}) {
    const model::FlowSet set = loaded_example(extra);
    const trajectory::Result tr = trajectory::analyze(set);
    const holistic::Result ho = holistic::analyze(set);

    sim::SearchConfig scfg;
    scfg.random_runs = 32;
    const sim::SearchOutcome obs = sim::find_worst_case(set, scfg);

    const auto& b = tr.bounds[2];  // tau3
    const Duration observed = obs.stats[2].observed_jitter();
    t.add_row({std::to_string(extra),
               format_fixed(set.node_utilisation(3), 2),
               format_duration(b.response), format_duration(b.jitter),
               format_duration(ho.bounds[2].jitter),
               format_duration(observed),
               observed <= b.jitter ? "yes" : "VIOLATED"});
  }
  std::printf("%s\n", t.to_string().c_str());
  std::printf("The jitter bound R_i - (sum C + (|P|-1) Lmin) grows with "
              "load exactly as the\nresponse bound does; observed jitter "
              "(max - min over all scenarios) stays within\nit.  The "
              "holistic jitter bound inflates much faster — the delay "
              "*variability*\nguarantee is where the trajectory approach "
              "pays off most (e.g. for de-jitter\nbuffer sizing in the "
              "paper's voice-over-IP motivation).\n");
  return 0;
}
