// Experiment: throughput and determinism of the differential fuzzing
// harness (src/proptest).
//
// Runs the same fixed-seed sweep at 1 worker and at the hardware worker
// count, prints cases/second for both, and checks the determinism
// contract end to end: per-invariant pass/skip/violation counters must be
// bit-identical whatever the worker count (run_fuzz shards over
// parallel_shards and reduces sequentially in case order).
// With `--json FILE` a machine-readable BENCH_fuzz.json record is written
// next to the console output: {"bench","schema","wall_ms","checks",
// "metrics"}, where "metrics" is the registry dump of the parallel sweep
// (docs/observability.md).
#include <chrono>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "base/options.h"
#include "base/parallel.h"
#include "base/table.h"
#include "obs/telemetry.h"
#include "proptest/fuzzer.h"

namespace {

using namespace tfa;

double run_ms(const proptest::FuzzConfig& cfg, proptest::FuzzReport* out) {
  const auto start = std::chrono::steady_clock::now();
  *out = proptest::run_fuzz(cfg);
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - start)
      .count();
}

bool same_counters(const proptest::FuzzReport& a,
                   const proptest::FuzzReport& b) {
  if (a.counters.size() != b.counters.size()) return false;
  for (std::size_t i = 0; i < a.counters.size(); ++i) {
    const auto& x = a.counters[i];
    const auto& y = b.counters[i];
    if (x.name != y.name || x.passes != y.passes || x.skips != y.skips ||
        x.violations != y.violations)
      return false;
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  OptionParser opts(argc, argv);
  const auto json_path = opts.value("--json");
  if (!opts.error().empty() || !opts.unknown_options().empty() ||
      !opts.positionals().empty()) {
    std::fprintf(stderr, "usage: bench_fuzz [--json FILE]\n");
    return 2;
  }

  proptest::FuzzConfig cfg;
  cfg.cases = 200;

  const std::size_t hw = default_worker_count();
  const std::size_t parallel_workers = hw < 4 ? 4 : hw;

  obs::Telemetry tel;
  proptest::FuzzReport seq, par;
  cfg.workers = 1;
  const double seq_ms = run_ms(cfg, &seq);
  cfg.workers = parallel_workers;
  cfg.telemetry = &tel;  // instrument the parallel sweep only
  const double par_ms = run_ms(cfg, &par);
  cfg.telemetry = nullptr;

  TextTable t({"run", "wall ms", "cases/s", "violations", "speedup"});
  t.add_row({"1 worker", format_fixed(seq_ms, 1),
             format_fixed(1000.0 * static_cast<double>(cfg.cases) / seq_ms, 1),
             std::to_string(seq.violations.size()), "1.00"});
  t.add_row({std::to_string(parallel_workers) + " workers",
             format_fixed(par_ms, 1),
             format_fixed(1000.0 * static_cast<double>(cfg.cases) / par_ms, 1),
             std::to_string(par.violations.size()),
             format_fixed(seq_ms / par_ms, 2)});
  std::printf("%s\n", t.to_string().c_str());

  std::printf("%s", proptest::report_text(par).c_str());

  const bool deterministic = same_counters(seq, par);
  std::printf("\ncounters identical across worker counts: %s\n",
              deterministic ? "yes" : "NO — BUG");

  const bool ok = deterministic && seq.clean() && par.clean();
  if (json_path) {
    const auto b = [](bool v) { return v ? "true" : "false"; };
    std::ostringstream js;
    js << "{\"bench\":\"bench_fuzz\",\"schema\":1,"
       << "\"workload\":{\"cases\":" << cfg.cases
       << ",\"workers\":" << parallel_workers << "},"
       << "\"wall_ms\":{\"sequential\":" << seq_ms
       << ",\"parallel\":" << par_ms << "},"
       << "\"checks\":{\"deterministic\":" << b(deterministic)
       << ",\"clean\":" << b(seq.clean() && par.clean())
       << ",\"ok\":" << b(ok) << "},"
       << "\"metrics\":" << tel.metrics.to_json() << "}\n";
    std::ofstream out(*json_path);
    if (out) out << js.str();
    if (!out) {
      std::fprintf(stderr, "cannot write %s\n", json_path->c_str());
      return 2;
    }
    std::printf("json record written to %s\n", json_path->c_str());
  }
  return ok ? 0 : 1;
}
