// Experiment: throughput and determinism of the differential fuzzing
// harness (src/proptest).
//
// Runs the same fixed-seed sweep at 1 worker and at the hardware worker
// count, prints cases/second for both, and checks the determinism
// contract end to end: per-invariant pass/skip/violation counters must be
// bit-identical whatever the worker count (run_fuzz shards over
// parallel_shards and reduces sequentially in case order).
#include <chrono>
#include <cstdio>

#include "base/parallel.h"
#include "base/table.h"
#include "proptest/fuzzer.h"

namespace {

using namespace tfa;

double run_ms(const proptest::FuzzConfig& cfg, proptest::FuzzReport* out) {
  const auto start = std::chrono::steady_clock::now();
  *out = proptest::run_fuzz(cfg);
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - start)
      .count();
}

bool same_counters(const proptest::FuzzReport& a,
                   const proptest::FuzzReport& b) {
  if (a.counters.size() != b.counters.size()) return false;
  for (std::size_t i = 0; i < a.counters.size(); ++i) {
    const auto& x = a.counters[i];
    const auto& y = b.counters[i];
    if (x.name != y.name || x.passes != y.passes || x.skips != y.skips ||
        x.violations != y.violations)
      return false;
  }
  return true;
}

}  // namespace

int main() {
  proptest::FuzzConfig cfg;
  cfg.cases = 200;

  const std::size_t hw = default_worker_count();
  const std::size_t parallel_workers = hw < 4 ? 4 : hw;

  proptest::FuzzReport seq, par;
  cfg.workers = 1;
  const double seq_ms = run_ms(cfg, &seq);
  cfg.workers = parallel_workers;
  const double par_ms = run_ms(cfg, &par);

  TextTable t({"run", "wall ms", "cases/s", "violations", "speedup"});
  t.add_row({"1 worker", format_fixed(seq_ms, 1),
             format_fixed(1000.0 * static_cast<double>(cfg.cases) / seq_ms, 1),
             std::to_string(seq.violations.size()), "1.00"});
  t.add_row({std::to_string(parallel_workers) + " workers",
             format_fixed(par_ms, 1),
             format_fixed(1000.0 * static_cast<double>(cfg.cases) / par_ms, 1),
             std::to_string(par.violations.size()),
             format_fixed(seq_ms / par_ms, 2)});
  std::printf("%s\n", t.to_string().c_str());

  std::printf("%s", proptest::report_text(par).c_str());

  const bool deterministic = same_counters(seq, par);
  std::printf("\ncounters identical across worker counts: %s\n",
              deterministic ? "yes" : "NO — BUG");

  return deterministic && seq.clean() && par.clean() ? 0 : 1;
}
