// Experiment T1/T2: regenerates the paper's Section-5 example — Table 1
// (inputs) and Table 2 (worst-case end-to-end response times, trajectory
// vs holistic) — and extends it with the completion-semantics trajectory
// row, the network-calculus baseline, and the deadline verdicts backing
// the paper's ">25% improvement, all-vs-none schedulable" claim.
#include <cstdio>
#include <string>

#include "base/table.h"
#include "holistic/holistic.h"
#include "model/paper_example.h"
#include "netcalc/analysis.h"
#include "sim/worst_case_search.h"
#include "trajectory/analysis.h"

namespace {

using namespace tfa;

std::vector<std::string> row(const std::string& label,
                             const std::vector<Duration>& values) {
  std::vector<std::string> cells{label};
  for (const Duration v : values) cells.push_back(format_duration(v));
  return cells;
}

}  // namespace

int main() {
  const model::FlowSet set = model::paper_example();

  std::printf("== Paper example (Section 5): Lmin = Lmax = 1, T = 36, "
              "C = 4, J = 0 ==\n\n");

  TextTable inputs({"flow", "path", "deadline D_i"});
  for (std::size_t i = 0; i < set.size(); ++i) {
    const auto& f = set.flow(static_cast<FlowIndex>(i));
    inputs.add_row({f.name(), f.path().to_string(),
                    std::to_string(f.deadline())});
  }
  std::printf("Table 1 — end-to-end deadlines and routes\n%s\n",
              inputs.to_string().c_str());

  trajectory::Config lo_cfg;
  lo_cfg.smax_semantics = trajectory::SmaxSemantics::kArrival;
  trajectory::Config hi_cfg;
  hi_cfg.smax_semantics = trajectory::SmaxSemantics::kCompletion;
  const trajectory::Result lo = trajectory::analyze(set, lo_cfg);
  const trajectory::Result hi = trajectory::analyze(set, hi_cfg);
  const holistic::Result ho = holistic::analyze(set);
  const netcalc::Result nc = netcalc::analyze(set);

  sim::SearchConfig scfg;
  scfg.random_runs = 64;
  const sim::SearchOutcome obs = sim::find_worst_case(set, scfg);

  auto collect = [](const auto& result) {
    std::vector<Duration> v;
    for (const auto& b : result.bounds) v.push_back(b.response);
    return v;
  };

  TextTable t2({"approach", "tau1", "tau2", "tau3", "tau4", "tau5"});
  t2.add_row(row("trajectory (this impl., arrival Smax)", collect(lo)));
  t2.add_row(row("trajectory (this impl., completion Smax)", collect(hi)));
  t2.add_row(row("trajectory (paper Table 2)",
                 {model::kPaperTrajectoryBounds.begin(),
                  model::kPaperTrajectoryBounds.end()}));
  t2.add_row(row("holistic (this impl.)", collect(ho)));
  t2.add_row(row("holistic (paper Table 2)",
                 {model::kPaperHolisticBounds.begin(),
                  model::kPaperHolisticBounds.end()}));
  t2.add_row(row("network calculus (this impl.)", collect(nc)));
  {
    std::vector<Duration> v;
    for (const auto& s : obs.stats) v.push_back(s.worst);
    t2.add_row(row("simulated worst observed", v));
  }
  std::printf("Table 2 — worst case end-to-end response times\n%s\n",
              t2.to_string().c_str());

  TextTable verdict({"flow", "deadline", "trajectory", "meets?", "holistic",
                     "meets?", "improvement"});
  for (std::size_t i = 0; i < set.size(); ++i) {
    const auto& f = set.flow(static_cast<FlowIndex>(i));
    const Duration t = lo.bounds[i].response;
    const Duration h = ho.bounds[i].response;
    verdict.add_row({f.name(), std::to_string(f.deadline()),
                     format_duration(t), t <= f.deadline() ? "yes" : "NO",
                     format_duration(h), h <= f.deadline() ? "yes" : "NO",
                     format_percent(static_cast<double>(h - t) /
                                    static_cast<double>(h))});
  }
  std::printf("Schedulability verdicts (paper: all meet under trajectory, "
              "none under holistic, improvement > 25%%)\n%s\n",
              verdict.to_string().c_str());

  std::printf("Soundness: every 'simulated worst observed' entry must stay\n"
              "at or below every analytic row above it (%zu scenarios).\n",
              obs.runs);
  return 0;
}
