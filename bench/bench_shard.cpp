// Experiment: per-request admission latency of the sharded incremental
// analyzer (trajectory/shard.h) as a function of NETWORK size vs SHARD
// size.
//
// Workload: K disjoint clusters of 4 nodes, each carrying F identical-
// pattern flows (defaults: K=2500, F=40 — a 100k-flow, 10k-node
// topology).  The flow-dependency graph of this topology has exactly K
// connected components, so the sharded analyzer holds K shards.  Probe
// admissions then land in one cluster at a time; each probe is admitted,
// timed, and removed again.
//
// The baseline is the SAME probe sequence against an analyzer whose
// whole network is one cluster (4 nodes, F flows).  If per-request cost
// scales with the shard, not the network, the 100k-flow analyzer's
// probe latency stays within a small factor of the single-cluster
// analyzer's — the committed BENCH_shard.json requires ratio <= 2.
// Because every cluster carries the same flow pattern, every probe's
// certified bound must equal the baseline probe's bound bit for bit,
// which the record also checks (per-shard isolation, docs/sharding.md).
//
// Options (base/options.h):
//   --clusters N   disjoint clusters (default 2500)
//   --flows N      flows per cluster (default 40)
//   --probes N     timed probe admissions (default 50)
//   --json FILE    write the BENCH_shard.json record
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "base/options.h"
#include "base/table.h"
#include "model/flow_set.h"
#include "trajectory/shard.h"

namespace {

using namespace tfa;

constexpr std::int32_t kClusterNodes = 4;

/// The F flows of one cluster, identical across clusters up to the node
/// offset — that symmetry is what makes the cross-cluster bound check
/// exact.  Deterministic: no RNG, parameters cycle by flow index.
std::vector<model::SporadicFlow> cluster_flows(std::int32_t cluster,
                                               std::int32_t flows) {
  const NodeId base = cluster * kClusterNodes;
  std::vector<model::SporadicFlow> out;
  out.reserve(static_cast<std::size_t>(flows));
  for (std::int32_t i = 0; i < flows; ++i) {
    const NodeId a = base + i % kClusterNodes;
    const NodeId b = base + (i % kClusterNodes + 1 + i / kClusterNodes %
                             (kClusterNodes - 1)) % kClusterNodes;
    const Duration period = 40 + 10 * (i % 7);
    out.emplace_back("c" + std::to_string(cluster) + "_f" + std::to_string(i),
                     model::Path{a, b}, period, /*cost=*/1, /*jitter=*/0,
                     /*deadline=*/100'000);
  }
  return out;
}

model::SporadicFlow probe_flow(std::int32_t cluster) {
  const NodeId base = cluster * kClusterNodes;
  return model::SporadicFlow("probe", model::Path{base, base + 1}, 50, 1, 0,
                             100'000);
}

struct LatencyStats {
  double mean_us = 0;
  double p50_us = 0;
  double max_us = 0;
};

LatencyStats summarize(std::vector<double> us) {
  LatencyStats s;
  if (us.empty()) return s;
  double sum = 0;
  for (const double v : us) sum += v;
  s.mean_us = sum / static_cast<double>(us.size());
  std::sort(us.begin(), us.end());
  s.p50_us = us[us.size() / 2];
  s.max_us = us.back();
  return s;
}

/// Runs `probes` timed admit+remove cycles against `sa`, probing the
/// cluster chosen by each probe index.  Returns per-probe latencies;
/// records every probe's verdict and certified bound.
std::vector<double> run_probes(trajectory::ShardedAnalyzer& sa,
                               std::int32_t clusters, std::size_t probes,
                               std::vector<bool>* admitted,
                               std::vector<Duration>* bounds) {
  std::vector<double> us;
  us.reserve(probes);
  for (std::size_t p = 0; p < probes; ++p) {
    const auto cluster =
        static_cast<std::int32_t>((p * 7919) % static_cast<std::size_t>(
                                                   clusters));
    const model::SporadicFlow probe = probe_flow(cluster);
    const auto start = std::chrono::steady_clock::now();
    const trajectory::AdmitOutcome o = sa.admit(probe);
    us.push_back(std::chrono::duration<double, std::micro>(
                     std::chrono::steady_clock::now() - start)
                     .count());
    admitted->push_back(o.admitted);
    bounds->push_back(o.candidate_bound);
    if (o.admitted) (void)sa.remove_flow("probe");
  }
  return us;
}

}  // namespace

int main(int argc, char** argv) {
  OptionParser opts(argc, argv);
  const auto json_path = opts.value("--json");
  const auto clusters_opt = opts.value("--clusters");
  const auto flows_opt = opts.value("--flows");
  const auto probes_opt = opts.value("--probes");
  if (!opts.error().empty() || !opts.unknown_options().empty() ||
      !opts.positionals().empty()) {
    std::fprintf(stderr,
                 "usage: bench_shard [--clusters N] [--flows N] [--probes N]"
                 " [--json FILE]\n");
    return 2;
  }
  const std::int32_t clusters =
      clusters_opt ? std::atoi(clusters_opt->c_str()) : 2500;
  const std::int32_t flows = flows_opt ? std::atoi(flows_opt->c_str()) : 40;
  const std::size_t probes =
      probes_opt ? static_cast<std::size_t>(std::atoll(probes_opt->c_str()))
                 : 50;
  if (clusters < 2 || flows < 1 || probes == 0) {
    std::fprintf(stderr,
                 "bench_shard: --clusters must be >= 2, --flows and --probes"
                 " >= 1\n");
    return 2;
  }
  const std::size_t total_flows =
      static_cast<std::size_t>(clusters) * static_cast<std::size_t>(flows);
  const std::int32_t total_nodes = clusters * kClusterNodes;

  // ---- the 100k-flow sharded analyzer.
  trajectory::ShardedAnalyzer sharded(model::Network(total_nodes, 1, 1));
  const auto load_start = std::chrono::steady_clock::now();
  for (std::int32_t c = 0; c < clusters; ++c)
    for (const model::SporadicFlow& f : cluster_flows(c, flows))
      sharded.add_flow(f);
  const double load_ms = std::chrono::duration<double, std::milli>(
                             std::chrono::steady_clock::now() - load_start)
                             .count();
  const auto settle_start = std::chrono::steady_clock::now();
  const std::size_t settled = sharded.settle();
  const double settle_ms = std::chrono::duration<double, std::milli>(
                               std::chrono::steady_clock::now() - settle_start)
                               .count();
  const trajectory::ShardStats st = sharded.stats();
  std::printf(
      "workload: %zu flows over %d nodes in %d clusters -> %zu shards "
      "(largest %zu)\nload %.1f ms, first settle %.1f ms (%zu shards "
      "analysed)\n\n",
      total_flows, total_nodes, clusters, st.shards, st.largest_shard,
      load_ms, settle_ms, settled);

  std::vector<bool> big_admitted;
  std::vector<Duration> big_bounds;
  const LatencyStats big = summarize(
      run_probes(sharded, clusters, probes, &big_admitted, &big_bounds));

  // ---- baseline: the same probes against a single-cluster network.
  trajectory::ShardedAnalyzer single(model::Network(kClusterNodes, 1, 1));
  for (const model::SporadicFlow& f : cluster_flows(0, flows))
    single.add_flow(f);
  (void)single.settle();
  std::vector<bool> single_admitted;
  std::vector<Duration> single_bounds;
  const LatencyStats small = summarize(
      run_probes(single, /*clusters=*/1, probes, &single_admitted,
                 &single_bounds));

  const double ratio = small.mean_us > 0 ? big.mean_us / small.mean_us : 0;

  TextTable t({"analyzer", "network", "mean us", "p50 us", "max us"});
  t.add_row({"sharded, " + std::to_string(st.shards) + " shards",
             std::to_string(total_flows) + " flows", format_fixed(big.mean_us, 1),
             format_fixed(big.p50_us, 1), format_fixed(big.max_us, 1)});
  t.add_row({"single shard", std::to_string(single.size()) + " flows",
             format_fixed(small.mean_us, 1), format_fixed(small.p50_us, 1),
             format_fixed(small.max_us, 1)});
  std::printf("%s", t.to_string().c_str());
  std::printf("per-request latency ratio (sharded / single): %.2f\n", ratio);

  // ---- correctness gates: every probe admitted, and — cluster symmetry
  // — every probe's certified bound equals the baseline probe's bound.
  bool all_admitted = true;
  for (const bool a : big_admitted) all_admitted = all_admitted && a;
  for (const bool a : single_admitted) all_admitted = all_admitted && a;
  bool bounds_match = !big_bounds.empty() && !single_bounds.empty();
  for (const Duration b : big_bounds)
    bounds_match = bounds_match && b == single_bounds.front();
  for (const Duration b : single_bounds)
    bounds_match = bounds_match && b == single_bounds.front();
  const bool multi_shard = st.shards == static_cast<std::size_t>(clusters);
  const bool ratio_ok = ratio > 0 && ratio <= 2.0;
  const bool ok = all_admitted && bounds_match && multi_shard && ratio_ok;
  std::printf(
      "probes admitted: %s; cross-cluster bounds identical: %s; "
      "ratio <= 2: %s\n",
      all_admitted ? "yes" : "NO — BUG", bounds_match ? "yes" : "NO — BUG",
      ratio_ok ? "yes" : "NO — over budget");

  if (json_path) {
    const auto b = [](bool v) { return v ? "true" : "false"; };
    std::ostringstream js;
    js << "{\"bench\":\"bench_shard\",\"schema\":1,"
       << "\"workload\":{\"clusters\":" << clusters
       << ",\"flows_per_cluster\":" << flows << ",\"flows\":" << total_flows
       << ",\"nodes\":" << total_nodes << ",\"probes\":" << probes << "},"
       << "\"load_ms\":" << load_ms << ",\"settle_ms\":" << settle_ms << ","
       << "\"shards\":{\"count\":" << st.shards << ",\"largest\":"
       << st.largest_shard << ",\"analyzed_flows\":" << st.analyzed_flows
       << "},"
       << "\"latency_us\":{\"sharded\":{\"mean\":" << big.mean_us
       << ",\"p50\":" << big.p50_us << ",\"max\":" << big.max_us
       << "},\"single\":{\"mean\":" << small.mean_us << ",\"p50\":"
       << small.p50_us << ",\"max\":" << small.max_us << "}},"
       << "\"ratio\":" << ratio << ","
       << "\"checks\":{\"all_admitted\":" << b(all_admitted)
       << ",\"bounds_match\":" << b(bounds_match)
       << ",\"multi_shard\":" << b(multi_shard)
       << ",\"ratio_ok\":" << b(ratio_ok) << ",\"ok\":" << b(ok) << "}}\n";
    std::ofstream out(*json_path);
    if (out) out << js.str();
    if (!out) {
      std::fprintf(stderr, "cannot write %s\n", json_path->c_str());
      return 2;
    }
    std::printf("json record written to %s\n", json_path->c_str());
  }
  return ok ? 0 : 1;
}
