// Experiment X6 (extension): deterministic bounds for every class of a
// strict-priority DiffServ router — the analysis the paper's conclusion
// gestures at but does not develop.  For a mixed-class deployment we print
// each class's FP/FIFO bound, the worst response observed under the
// strict-priority simulation, and the tightness ratio.
#include <cstdio>
#include <string>

#include "base/table.h"
#include "diffserv/strict_priority.h"
#include "model/flow_set.h"
#include "sim/worst_case_search.h"
#include "trajectory/fp_fifo.h"

namespace {

using namespace tfa;

/// A small campus core: two EF voice trunks, two AF aggregates, one BE
/// scavenger, sharing a 5-router spine.
model::FlowSet campus() {
  model::FlowSet set(model::Network(7, 1, 2));
  set.add(model::SporadicFlow("voice-east", model::Path{0, 2, 3, 4, 5}, 200,
                              4, 2, 2000));
  set.add(model::SporadicFlow("voice-west", model::Path{1, 2, 3, 4, 6}, 200,
                              4, 2, 2000));
  set.add(model::SporadicFlow("erp-af1", model::Path{0, 2, 3, 4, 6}, 300, 12,
                              0, 4000, model::ServiceClass::kAssured1));
  set.add(model::SporadicFlow("video-af3", model::Path{1, 2, 3, 4, 5}, 250,
                              18, 0, 5000, model::ServiceClass::kAssured3));
  set.add(model::SporadicFlow("backup-be", model::Path{0, 2, 3, 4, 5}, 600,
                              40, 0, 20000, model::ServiceClass::kBestEffort));
  return set;
}

}  // namespace

int main() {
  std::printf("== X6 (extension): FP/FIFO bounds for every class under a "
              "strict-priority router ==\n\n");

  const model::FlowSet set = campus();
  const trajectory::FpFifoResult fp = trajectory::analyze_fp_fifo(set);

  sim::SearchConfig scfg;
  scfg.random_runs = 48;
  scfg.discipline = diffserv::make_strict_priority;
  const sim::SearchOutcome obs = sim::find_worst_case(set, scfg);

  TextTable t({"class", "flow", "bound", "delta", "observed", "obs/bound",
               "sound"});
  for (const auto& cls : fp.classes) {
    for (const auto& b : cls.bounds) {
      const auto i = static_cast<std::size_t>(b.flow);
      const Duration o = obs.stats[i].worst;
      t.add_row({model::to_string(cls.service_class),
                 set.flow(b.flow).name(), format_duration(b.response),
                 format_duration(b.delta), format_duration(o),
                 is_infinite(b.response)
                     ? "-"
                     : format_fixed(static_cast<double>(o) /
                                        static_cast<double>(b.response),
                                    2),
                 o <= b.response ? "yes" : "VIOLATED"});
    }
  }
  std::printf("%s\n", t.to_string().c_str());
  std::printf("Higher classes get tighter bounds; lower classes absorb both "
              "the priority\ninterference (window extended by the latest "
              "start time) and Lemma-4 blocking\nfrom below.  Every "
              "observation must stay within its bound.\n");
  return 0;
}
