// Experiment X9 (extension): FIFO (trajectory & holistic) vs non-
// preemptive global EDF (Spuri-style holistic) on a workload with mixed
// deadline tightness — the scheduling-policy axis the paper's related
// work sketches but never measures.
//
// EDF protects urgent flows at the expense of relaxed ones; FIFO treats
// everyone alike but, analysed with the trajectory approach, gives far
// tighter guarantees than its per-node reputation suggests.
#include <cstdio>
#include <string>

#include "base/table.h"
#include "holistic/edf.h"
#include "holistic/holistic.h"
#include "model/flow_set.h"
#include "sim/edf_discipline.h"
#include "sim/worst_case_search.h"
#include "trajectory/analysis.h"

namespace {

using namespace tfa;

model::FlowSet mixed_workload() {
  model::FlowSet set(model::Network(5, 1, 1));
  // Urgent control flows with tight deadlines.
  set.add(model::SporadicFlow("ctl-a", model::Path{0, 2, 3}, 80, 3, 0, 48));
  set.add(model::SporadicFlow("ctl-b", model::Path{1, 2, 3}, 80, 3, 0, 48));
  // Bulkier flows with generous deadlines.
  set.add(model::SporadicFlow("bulk-a", model::Path{0, 2, 3, 4}, 120, 9, 0,
                              400));
  set.add(model::SporadicFlow("bulk-b", model::Path{1, 2, 4}, 150, 12, 0,
                              400));
  return set;
}

}  // namespace

int main() {
  std::printf("== X9: scheduling-policy comparison on a mixed-criticality "
              "workload ==\n\n");

  const model::FlowSet set = mixed_workload();
  const trajectory::Result traj = trajectory::analyze(set);
  const holistic::Result fifo_h = holistic::analyze(set);
  const holistic::EdfResult edf = holistic::analyze_edf(set);

  sim::SearchConfig fifo_cfg;
  fifo_cfg.random_runs = 32;
  const sim::SearchOutcome fifo_obs = sim::find_worst_case(set, fifo_cfg);
  sim::SearchConfig edf_cfg = fifo_cfg;
  edf_cfg.discipline = sim::make_edf;
  const sim::SearchOutcome edf_obs = sim::find_worst_case(set, edf_cfg);

  TextTable t({"flow", "deadline", "FIFO traj", "FIFO holistic",
               "EDF holistic", "FIFO obs", "EDF obs"});
  for (std::size_t i = 0; i < set.size(); ++i) {
    const auto fi = static_cast<FlowIndex>(i);
    t.add_row({set.flow(fi).name(), std::to_string(set.flow(fi).deadline()),
               format_duration(traj.find(fi)->response),
               format_duration(fifo_h.find(fi)->response),
               format_duration(edf.find(fi)->response),
               format_duration(fifo_obs.stats[i].worst),
               format_duration(edf_obs.stats[i].worst)});
  }
  std::printf("%s\n", t.to_string().c_str());

  auto verdicts = [&](auto has_bound) {
    int ok = 0;
    for (std::size_t i = 0; i < set.size(); ++i)
      if (has_bound(static_cast<FlowIndex>(i))) ++ok;
    return ok;
  };
  const int traj_ok = verdicts([&](FlowIndex i) {
    return traj.find(i)->schedulable;
  });
  const int fifo_ok = verdicts([&](FlowIndex i) {
    return fifo_h.find(i)->schedulable;
  });
  const int edf_ok = verdicts([&](FlowIndex i) {
    return edf.find(i)->schedulable;
  });
  std::printf("flows certified: FIFO/trajectory %d, FIFO/holistic %d, "
              "EDF/holistic %d (of %zu)\n\n",
              traj_ok, fifo_ok, edf_ok, set.size());
  std::printf("EDF shields the tight-deadline control flows from the bulk "
              "traffic (compare the\n'EDF obs' column), while FIFO under "
              "the trajectory analysis certifies the same\nworkload without "
              "deadline-aware routers — the paper's core trade-off.\n");
  return 0;
}
