// Experiment X1: how much the trajectory approach gains over the holistic
// and network-calculus baselines as the network grows — the paper's >25%
// single-point claim, swept over parking-lot depth and crossing load.
//
// Series 1: backbone length (hops) at fixed crossing load.
// Series 2: crossing flows per hop at fixed backbone length.
#include <cstdio>
#include <string>

#include "base/table.h"
#include "holistic/holistic.h"
#include "model/generators.h"
#include "netcalc/analysis.h"
#include "trajectory/analysis.h"

namespace {

using namespace tfa;

struct Point {
  Duration trajectory = 0;
  Duration holistic = 0;
  Duration netcalc = 0;
};

/// Bounds for the backbone ("main") flow of a parking lot.
Point measure(const model::ParkingLotConfig& cfg) {
  const model::FlowSet set = model::make_parking_lot(cfg);
  Point p;
  p.trajectory = trajectory::analyze(set).bounds[0].response;
  p.holistic = holistic::analyze(set).bounds[0].response;
  p.netcalc = netcalc::analyze(set).bounds[0].response;
  return p;
}

std::string gain(Duration ours, Duration theirs) {
  if (is_infinite(theirs) || theirs == 0) return "-";
  return format_percent(static_cast<double>(theirs - ours) /
                        static_cast<double>(theirs));
}

}  // namespace

int main() {
  std::printf("== X1: trajectory improvement over baselines "
              "(parking-lot backbone flow) ==\n\n");

  {
    TextTable t({"hops", "trajectory", "holistic", "netcalc",
                 "gain vs holistic", "gain vs netcalc"});
    for (std::int32_t hops = 3; hops <= 12; ++hops) {
      model::ParkingLotConfig cfg;
      cfg.hops = hops;
      cfg.cross_flows = hops - 1;  // one crossing flow per junction
      cfg.cross_span = 2;
      cfg.period = 120;
      const Point p = measure(cfg);
      t.add_row({std::to_string(hops), format_duration(p.trajectory),
                 format_duration(p.holistic), format_duration(p.netcalc),
                 gain(p.trajectory, p.holistic),
                 gain(p.trajectory, p.netcalc)});
    }
    std::printf("Series 1 — growing path length (crossings: hops-1, "
                "span 2, T = 120, C = 4)\n%s\n",
                t.to_string().c_str());
  }

  {
    TextTable t({"cross flows", "node util", "trajectory", "holistic",
                 "netcalc", "gain vs holistic", "gain vs netcalc"});
    for (std::int32_t cross = 0; cross <= 12; cross += 2) {
      model::ParkingLotConfig cfg;
      cfg.hops = 6;
      cfg.cross_flows = cross;
      cfg.cross_span = 3;
      cfg.period = 150;
      const model::FlowSet set = model::make_parking_lot(cfg);
      const Point p = measure(cfg);
      t.add_row({std::to_string(cross),
                 format_fixed(set.max_node_utilisation(), 2),
                 format_duration(p.trajectory), format_duration(p.holistic),
                 format_duration(p.netcalc), gain(p.trajectory, p.holistic),
                 gain(p.trajectory, p.netcalc)});
    }
    std::printf("Series 2 — growing crossing load (6 hops, span 3, "
                "T = 150, C = 4)\n%s\n",
                t.to_string().c_str());
  }

  std::printf("Expected shape: the trajectory bound wins everywhere, and "
              "the gap widens\nwith path length — the holistic recurrence "
              "re-counts the same bursts at every\nhop, exactly the "
              "pessimism the paper's Section 4 removes.\n");
  return 0;
}
