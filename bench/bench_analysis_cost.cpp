// Experiment X4: cost of running the analyses themselves (google-benchmark
// microbenchmarks).  Admission control runs the full analysis per request,
// so its latency determines how fast an edge router can take decisions.
#include <benchmark/benchmark.h>

#include <string>
#include <string_view>
#include <vector>

#include "base/options.h"
#include "base/rng.h"
#include "holistic/holistic.h"
#include "model/generators.h"
#include "model/paper_example.h"
#include "netcalc/analysis.h"
#include "trajectory/analysis.h"

namespace {

using namespace tfa;

model::FlowSet random_set(std::int64_t flows, std::int64_t path_len,
                          std::uint64_t seed) {
  Rng rng(seed);
  model::RandomConfig cfg;
  cfg.nodes = static_cast<std::int32_t>(std::max<std::int64_t>(path_len + 2,
                                                               flows));
  cfg.flows = static_cast<std::int32_t>(flows);
  cfg.min_path = 2;
  cfg.max_path = static_cast<std::int32_t>(path_len);
  cfg.max_jitter = 8;
  cfg.max_utilisation = 0.5;
  return model::make_random(cfg, rng);
}

void BM_TrajectoryPaperExample(benchmark::State& state) {
  const model::FlowSet set = model::paper_example();
  for (auto _ : state)
    benchmark::DoNotOptimize(trajectory::analyze(set));
}
BENCHMARK(BM_TrajectoryPaperExample);

void BM_HolisticPaperExample(benchmark::State& state) {
  const model::FlowSet set = model::paper_example();
  for (auto _ : state)
    benchmark::DoNotOptimize(holistic::analyze(set));
}
BENCHMARK(BM_HolisticPaperExample);

void BM_NetcalcPaperExample(benchmark::State& state) {
  const model::FlowSet set = model::paper_example();
  for (auto _ : state)
    benchmark::DoNotOptimize(netcalc::analyze(set));
}
BENCHMARK(BM_NetcalcPaperExample);

void BM_TrajectoryVsFlowCount(benchmark::State& state) {
  const model::FlowSet set = random_set(state.range(0), 4, 42);
  for (auto _ : state)
    benchmark::DoNotOptimize(trajectory::analyze(set));
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_TrajectoryVsFlowCount)->RangeMultiplier(2)->Range(4, 64)
    ->Complexity();

void BM_TrajectoryVsPathLength(benchmark::State& state) {
  const model::FlowSet set = random_set(8, state.range(0), 43);
  for (auto _ : state)
    benchmark::DoNotOptimize(trajectory::analyze(set));
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_TrajectoryVsPathLength)->DenseRange(2, 10, 2)->Complexity();

void BM_HolisticVsFlowCount(benchmark::State& state) {
  const model::FlowSet set = random_set(state.range(0), 4, 42);
  for (auto _ : state)
    benchmark::DoNotOptimize(holistic::analyze(set));
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_HolisticVsFlowCount)->RangeMultiplier(2)->Range(4, 64)
    ->Complexity();

void BM_NetcalcVsFlowCount(benchmark::State& state) {
  const model::FlowSet set = random_set(state.range(0), 4, 42);
  for (auto _ : state)
    benchmark::DoNotOptimize(netcalc::analyze(set));
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_NetcalcVsFlowCount)->RangeMultiplier(2)->Range(4, 64)
    ->Complexity();

void BM_EfAnalysisWithBackground(benchmark::State& state) {
  model::FlowSet set = model::paper_example();
  set.add(model::SporadicFlow("bulk", model::Path{2, 3, 4, 7}, 400, 16, 0,
                              100000, model::ServiceClass::kBestEffort));
  trajectory::Config cfg;
  cfg.ef_mode = true;
  for (auto _ : state)
    benchmark::DoNotOptimize(trajectory::analyze(set, cfg));
}
BENCHMARK(BM_EfAnalysisWithBackground);

}  // namespace

// Custom main instead of BENCHMARK_MAIN(): `--json FILE` is sugar for
// google-benchmark's --benchmark_out=FILE --benchmark_out_format=json, so
// every bench binary shares one flag for machine-readable records
// (BENCH_analysis_cost.json; docs/observability.md).
int main(int argc, char** argv) {
  tfa::OptionParser opts(argc, argv);
  const auto json_path = opts.value("--json");
  std::vector<std::string> args{argv[0]};
  if (json_path) {
    args.push_back("--benchmark_out=" + *json_path);
    args.push_back("--benchmark_out_format=json");
  }
  // Everything else passes through to google-benchmark untouched.
  for (int a = 1; a < argc; ++a) {
    const std::string_view arg = argv[a];
    if (arg == "--json") {
      ++a;  // skip its value, already consumed
      continue;
    }
    args.emplace_back(arg);
  }
  std::vector<char*> argv2;
  argv2.reserve(args.size());
  for (std::string& s : args) argv2.push_back(s.data());
  int argc2 = static_cast<int>(argv2.size());
  benchmark::Initialize(&argc2, argv2.data());
  if (benchmark::ReportUnrecognizedArguments(argc2, argv2.data())) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
