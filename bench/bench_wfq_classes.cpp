// Experiment X10 (extension): deterministic bounds for EVERY class of the
// paper's Figure-3 router — EF via Property 3, AF/BE via the WFQ
// class-level curves — validated against the DiffServ simulation.  The
// paper only bounds EF; this closes the loop for the whole router.
#include <cstdio>
#include <string>

#include "base/table.h"
#include "diffserv/ef_analysis.h"
#include "diffserv/wfq_analysis.h"
#include "model/flow_set.h"
#include "sim/worst_case_search.h"

namespace {

using namespace tfa;

model::FlowSet enterprise_edge() {
  model::FlowSet set(model::Network(5, 1, 2));
  set.add(model::SporadicFlow("voice-1", model::Path{0, 2, 3}, 200, 4, 2,
                              1500));
  set.add(model::SporadicFlow("voice-2", model::Path{1, 2, 3}, 200, 4, 2,
                              1500));
  set.add(model::SporadicFlow("erp", model::Path{0, 2, 3, 4}, 400, 24, 0,
                              8000, model::ServiceClass::kAssured1));
  set.add(model::SporadicFlow("video", model::Path{1, 2, 4}, 300, 30, 0,
                              9000, model::ServiceClass::kAssured3));
  set.add(model::SporadicFlow("mail", model::Path{0, 2, 4}, 1500, 40, 0,
                              30000, model::ServiceClass::kBestEffort));
  set.add(model::SporadicFlow("backup", model::Path{1, 2, 3, 4}, 2400, 60, 0,
                              60000, model::ServiceClass::kBestEffort));
  return set;
}

}  // namespace

int main() {
  std::printf("== X10: every class of the Figure-3 router bounded ==\n\n");
  const model::FlowSet set = enterprise_edge();

  const trajectory::Result ef = diffserv::analyze_ef(set);
  const diffserv::WfqResult wfq = diffserv::analyze_wfq(set);

  sim::SearchConfig scfg;
  scfg.random_runs = 48;
  scfg.discipline = diffserv::make_diffserv;
  const sim::SearchOutcome obs = sim::find_worst_case(set, scfg);

  TextTable t({"flow", "class", "analysis", "bound", "observed",
               "obs/bound", "sound"});
  auto add = [&](FlowIndex i, const char* analysis, Duration bound) {
    const auto iu = static_cast<std::size_t>(i);
    const Duration o = obs.stats[iu].worst;
    t.add_row({set.flow(i).name(),
               model::to_string(set.flow(i).service_class()), analysis,
               format_duration(bound), format_duration(o),
               is_infinite(bound)
                   ? "-"
                   : format_fixed(static_cast<double>(o) /
                                      static_cast<double>(bound),
                                  2),
               o <= bound ? "yes" : "VIOLATED"});
  };
  for (const auto& b : ef.bounds) add(b.flow, "Property 3", b.response);
  for (const auto& b : wfq.bounds) add(b.flow, "WFQ curves", b.response);
  std::printf("%s\n", t.to_string().c_str());

  std::printf("EF keeps microsecond-scale bounds under bulk AF/BE load; "
              "the WFQ curves give\nthe assured classes usable (if looser) "
              "guarantees and even best-effort a finite\nceiling — no class "
              "of the router is left unquantified.\n");
  return 0;
}
