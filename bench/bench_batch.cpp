// Experiment: cost of the batch / incremental analysis front end
// (trajectory/batch.h) on an admission-control-sized workload.
//
// Three comparisons on one generated ~200-flow set:
//   1. sequential vs. parallel engine (Config::workers = 1 vs. hardware):
//      identical bounds, wall-time speedup scales with real cores;
//   2. from-scratch vs. warm-started re-analysis after adding one flow:
//      the warm start must converge in strictly fewer Smax passes;
//   3. analyze_many() fan-out over independent sets.
//
// Prints the EngineStats of every run.  Wall times depend on the host;
// the pass/test-point counters are deterministic (docs/performance.md).
//
// Options (base/options.h):
//   --flows N    workload size (default 200)
//   --fleet N    independent sets for the analyze_many section (default 16)
//   --json FILE  additionally write a machine-readable BENCH_batch.json
//                record: {"bench","schema","workload","wall_ms","checks",
//                "metrics"} with "metrics" the full registry dump
//                (docs/observability.md).
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>

#include "base/options.h"
#include "base/parallel.h"
#include "base/rng.h"
#include "base/table.h"
#include "model/generators.h"
#include "obs/telemetry.h"
#include "trajectory/analysis.h"
#include "trajectory/batch.h"

namespace {

using namespace tfa;

model::FlowSet make_workload(std::uint64_t seed, std::int32_t flows) {
  Rng rng(seed);
  model::RandomConfig cfg;
  cfg.nodes = 48;
  cfg.flows = flows;
  cfg.min_path = 2;
  cfg.max_path = 4;
  cfg.max_jitter = 8;
  cfg.max_utilisation = 0.5;
  return model::make_random(cfg, rng);
}

double run_ms(const model::FlowSet& set, const trajectory::Config& cfg,
              trajectory::Result* out, obs::Telemetry* telemetry = nullptr) {
  const auto start = std::chrono::steady_clock::now();
  *out = trajectory::analyze(set, cfg, telemetry);
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - start)
      .count();
}

bool same_bounds(const trajectory::Result& a, const trajectory::Result& b) {
  if (a.bounds.size() != b.bounds.size()) return false;
  for (std::size_t i = 0; i < a.bounds.size(); ++i)
    if (a.bounds[i].response != b.bounds[i].response) return false;
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  OptionParser opts(argc, argv);
  const auto json_path = opts.value("--json");
  const auto flows_opt = opts.value("--flows");
  const auto fleet_opt = opts.value("--fleet");
  if (!opts.error().empty() || !opts.unknown_options().empty() ||
      !opts.positionals().empty()) {
    std::fprintf(stderr,
                 "usage: bench_batch [--flows N] [--fleet N] [--json FILE]\n");
    return 2;
  }
  const std::int32_t flows =
      flows_opt ? std::atoi(flows_opt->c_str()) : 200;
  const std::size_t fleet_size =
      fleet_opt ? static_cast<std::size_t>(std::atoll(fleet_opt->c_str()))
                : 16;
  if (flows <= 1 || fleet_size == 0) {
    std::fprintf(stderr, "bench_batch: --flows must be > 1, --fleet > 0\n");
    return 2;
  }

  // Every instrumented run below also feeds this registry; the --json
  // record embeds its dump.
  obs::Telemetry tel;

  const model::FlowSet set = make_workload(/*seed=*/7, flows);
  std::printf("workload: %zu flows, %d nodes, peak utilisation %.2f\n\n",
              set.size(), set.network().node_count(),
              set.max_node_utilisation());

  // ---- 1. sequential vs. parallel engine.
  const std::size_t hw = default_worker_count();
  const std::size_t parallel_workers = hw < 4 ? 4 : hw;
  trajectory::Config seq_cfg;
  seq_cfg.workers = 1;
  trajectory::Config par_cfg;
  par_cfg.workers = parallel_workers;

  trajectory::Result seq, par;
  const double seq_ms = run_ms(set, seq_cfg, &seq, &tel);
  const double par_ms = run_ms(set, par_cfg, &par, &tel);

  TextTable t({"run", "wall ms", "passes", "test points", "speedup"});
  t.add_row({"sequential (1 worker)", format_fixed(seq_ms, 1),
             std::to_string(seq.stats.smax_passes),
             std::to_string(seq.stats.test_points), "1.00"});
  t.add_row({"parallel (" + std::to_string(parallel_workers) + " workers)",
             format_fixed(par_ms, 1), std::to_string(par.stats.smax_passes),
             std::to_string(par.stats.test_points),
             format_fixed(seq_ms / par_ms, 2)});
  std::printf("%s", t.to_string().c_str());
  std::printf("bounds identical: %s (hardware threads: %zu)\n\n",
              same_bounds(seq, par) ? "yes" : "NO — BUG",
              hw);

  // ---- 2. incremental re-analysis after one flow add.
  trajectory::AnalysisCache cache;
  const trajectory::Result base =
      trajectory::reanalyze_with(set, cache, seq_cfg, &tel);

  model::FlowSet grown = set;
  grown.add(model::SporadicFlow("newcomer", model::Path{0, 1, 2}, 500, 2, 0,
                                100000));

  const auto warm_start = std::chrono::steady_clock::now();
  const trajectory::Result warm =
      trajectory::reanalyze_with(grown, cache, seq_cfg, &tel);
  const double warm_ms = std::chrono::duration<double, std::milli>(
                             std::chrono::steady_clock::now() - warm_start)
                             .count();
  trajectory::Result cold;
  const double cold_ms = run_ms(grown, seq_cfg, &cold, &tel);

  TextTable t2({"run", "wall ms", "passes", "cache hits", "warm entries"});
  t2.add_row({"from scratch", format_fixed(cold_ms, 1),
              std::to_string(cold.stats.smax_passes), "0", "0"});
  t2.add_row({"warm start", format_fixed(warm_ms, 1),
              std::to_string(warm.stats.smax_passes),
              std::to_string(warm.stats.cache_hits),
              std::to_string(warm.stats.warm_seeded_entries)});
  std::printf("%s", t2.to_string().c_str());
  // A converged run needs at least 2 passes (one that changes the
  // newcomer's rows, one that confirms).  When the cold run already sits
  // at that floor there is nothing for the warm start to save, so small
  // --flows smoke runs only require "no extra passes"; above the floor
  // the saving must be strict.
  const bool at_floor = cold.stats.smax_passes <= 2;
  const bool fewer = at_floor
                         ? warm.stats.smax_passes <= cold.stats.smax_passes
                         : warm.stats.smax_passes < cold.stats.smax_passes;
  std::printf("bounds identical: %s; warm start saved %zu of %zu passes%s\n\n",
              same_bounds(warm, cold) ? "yes" : "NO — BUG",
              cold.stats.smax_passes - warm.stats.smax_passes,
              cold.stats.smax_passes,
              fewer ? "" : " (EXPECTED STRICTLY FEWER — BUG)");

  // ---- 3. fan-out over independent sets.
  std::vector<model::FlowSet> fleet;
  for (std::uint64_t s = 0; s < fleet_size; ++s)
    fleet.push_back(make_workload(100 + s, 48));

  const auto seq_fleet_start = std::chrono::steady_clock::now();
  const auto fleet_seq = trajectory::analyze_many(fleet, {}, 1, &tel);
  const double fleet_seq_ms =
      std::chrono::duration<double, std::milli>(
          std::chrono::steady_clock::now() - seq_fleet_start)
          .count();
  const auto par_fleet_start = std::chrono::steady_clock::now();
  const auto fleet_par =
      trajectory::analyze_many(fleet, {}, parallel_workers, &tel);
  const double fleet_par_ms =
      std::chrono::duration<double, std::milli>(
          std::chrono::steady_clock::now() - par_fleet_start)
          .count();
  bool fleet_same = true;
  for (std::size_t i = 0; i < fleet.size(); ++i)
    fleet_same = fleet_same && same_bounds(fleet_seq[i], fleet_par[i]);
  std::printf(
      "analyze_many over %zu sets: %.1f ms sequential, %.1f ms at %zu "
      "workers (speedup %.2f, results identical: %s)\n",
      fleet.size(), fleet_seq_ms, fleet_par_ms, parallel_workers,
      fleet_seq_ms / fleet_par_ms, fleet_same ? "yes" : "NO — BUG");

  const bool ok = same_bounds(seq, par) && same_bounds(warm, cold) && fewer &&
                  fleet_same && base.converged;

  if (json_path) {
    const auto b = [](bool v) { return v ? "true" : "false"; };
    std::ostringstream js;
    js << "{\"bench\":\"bench_batch\",\"schema\":1,"
       << "\"workload\":{\"flows\":" << flows << ",\"nodes\":48"
       << ",\"fleet\":" << fleet_size
       << ",\"workers\":" << parallel_workers << "},"
       << "\"wall_ms\":{\"sequential\":" << seq_ms
       << ",\"parallel\":" << par_ms << ",\"warm\":" << warm_ms
       << ",\"cold\":" << cold_ms << ",\"fleet_sequential\":" << fleet_seq_ms
       << ",\"fleet_parallel\":" << fleet_par_ms << "},"
       << "\"checks\":{\"bounds_identical\":" << b(same_bounds(seq, par))
       << ",\"warm_bounds_identical\":" << b(same_bounds(warm, cold))
       << ",\"warm_fewer_passes\":" << b(fewer)
       << ",\"fleet_identical\":" << b(fleet_same)
       << ",\"converged\":" << b(base.converged) << ",\"ok\":" << b(ok)
       << "},\"metrics\":" << tel.metrics.to_json() << "}\n";
    std::ofstream out(*json_path);
    if (out) out << js.str();
    if (!out) {
      std::fprintf(stderr, "cannot write %s\n", json_path->c_str());
      return 2;
    }
    std::printf("json record written to %s\n", json_path->c_str());
  }
  return ok ? 0 : 1;
}
