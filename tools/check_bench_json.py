#!/usr/bin/env python3
"""Validate a bench JSON record against its expected shape.

The bench binaries (bench/*.cpp) emit machine-readable records via
--json: a flat object with at least "bench" (the binary's name),
"schema" (an integer bumped on layout changes) and a "checks" object of
boolean correctness gates.  The bench-smoke ctest lanes run each bench
at a tiny scale and then this script against the file it wrote, so a
record that silently loses a field — or a bench whose own gates fail —
turns the lane red instead of producing an unreadable artifact.

Usage:
  check_bench_json.py FILE --bench NAME --schema N \
      [--require dotted.key] [--require dotted.key=LITERAL] \
      [--max dotted.key=BOUND] ...

--require asserts a dotted key path exists; with "=LITERAL" (compared
as JSON when it parses, as a string otherwise) it must also hold that
value.  --max asserts a numeric key is <= BOUND — the shard bench's
latency-ratio gate (ratio <= 2) is enforced this way, so a regression
that makes per-request cost scale with the network again turns the
lane red.  Exit code 0 when every assertion holds, 1 otherwise.
"""

import argparse
import json
import sys


def lookup(doc, dotted):
    """Returns (value, found) for a dotted key path into nested dicts."""
    node = doc
    for part in dotted.split("."):
        if not isinstance(node, dict) or part not in node:
            return None, False
        node = node[part]
    return node, True


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("file", help="bench JSON record to validate")
    parser.add_argument("--bench", help="expected value of the 'bench' key")
    parser.add_argument("--schema", type=int,
                        help="expected value of the 'schema' key")
    parser.add_argument("--require", action="append", default=[],
                        metavar="KEY[=VALUE]",
                        help="dotted key that must exist "
                             "(and equal VALUE when given)")
    parser.add_argument("--max", action="append", default=[],
                        metavar="KEY=BOUND", dest="maxima",
                        help="dotted key that must be a number <= BOUND")
    args = parser.parse_args()

    try:
        with open(args.file, encoding="utf-8") as handle:
            doc = json.load(handle)
    except (OSError, ValueError) as err:
        print(f"{args.file}: {err}", file=sys.stderr)
        return 1
    if not isinstance(doc, dict):
        print(f"{args.file}: top-level value is not an object",
              file=sys.stderr)
        return 1

    failures = []
    checks = list(args.require)
    if args.bench is not None:
        checks.append(f"bench={json.dumps(args.bench)}")
    if args.schema is not None:
        checks.append(f"schema={args.schema}")

    for check in checks:
        key, sep, raw = check.partition("=")
        value, found = lookup(doc, key)
        if not found:
            failures.append(f"missing key '{key}'")
            continue
        if not sep:
            continue
        try:
            expected = json.loads(raw)
        except ValueError:
            expected = raw
        if value != expected:
            failures.append(f"key '{key}' is {json.dumps(value)}, "
                            f"expected {json.dumps(expected)}")

    for bound in args.maxima:
        key, sep, raw = bound.partition("=")
        try:
            limit = float(raw)
        except ValueError:
            limit = None
        if not sep or limit is None:
            failures.append(f"--max '{bound}' is not KEY=NUMBER")
            continue
        value, found = lookup(doc, key)
        if not found:
            failures.append(f"missing key '{key}'")
        elif not isinstance(value, (int, float)) or isinstance(value, bool):
            failures.append(f"key '{key}' is {json.dumps(value)}, "
                            f"not a number")
        elif value > limit:
            failures.append(f"key '{key}' is {value}, above the "
                            f"bound {raw}")
        checks.append(bound)

    for failure in failures:
        print(f"{args.file}: {failure}", file=sys.stderr)
    if not failures:
        print(f"{args.file}: ok ({len(checks)} assertion(s))")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
