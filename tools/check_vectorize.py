#!/usr/bin/env python3
"""Assert that the SoA kernel's gated hot loops auto-vectorize.

src/trajectory/soa.cpp marks the two loops its layout and clamp-form
rewrite exist for with sentinel comments:

    // soa-vec-gate: windows
    // soa-vec-gate: accumulate

This script compiles the translation unit standalone with the
vectorization flags the `soa-vec` preset uses (-O3 -mavx2, GCC's
-fopt-info-vec-optimized remarks) and requires an
"optimized: loop vectorized" remark anchored within a few lines of each
sentinel.  A refactor that reintroduces a per-element branch, a function
call the compiler will not inline, or a loop-carried dependence into
either loop silences the remark and turns this check red — instead of
silently downgrading the kernel to scalar code that still passes every
bit-identity test.

Usage:
  check_vectorize.py --compiler g++ --source src/trajectory/soa.cpp \
      --include src

Exit code 0 when every sentinel has its remark, 1 otherwise, 2 when the
compile itself fails.
"""

import argparse
import re
import subprocess
import sys

SENTINELS = ("soa-vec-gate: windows", "soa-vec-gate: accumulate")
# The remark must anchor to the `for` within this many lines below the
# sentinel comment (the sentinel sits directly above the loop).
WINDOW = 6

FLAGS = ["-std=c++20", "-O3", "-mavx2", "-fopt-info-vec-optimized", "-c"]


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--compiler", default="c++")
    parser.add_argument("--source", required=True)
    parser.add_argument("--include", action="append", default=[],
                        help="include directory (repeatable)")
    args = parser.parse_args()

    with open(args.source, encoding="utf-8") as handle:
        lines = handle.read().splitlines()
    anchors = {}
    for sentinel in SENTINELS:
        found = [i + 1 for i, line in enumerate(lines) if sentinel in line]
        if len(found) != 1:
            print(f"{args.source}: expected exactly one '{sentinel}' "
                  f"sentinel, found {len(found)}", file=sys.stderr)
            return 1
        anchors[sentinel] = found[0]

    cmd = [args.compiler, *FLAGS]
    for inc in args.include:
        cmd += ["-I", inc]
    cmd += [args.source, "-o", "/dev/null"]
    proc = subprocess.run(cmd, capture_output=True, text=True)
    if proc.returncode != 0:
        print(f"compile failed: {' '.join(cmd)}\n{proc.stderr}",
              file=sys.stderr)
        return 2

    # GCC emits "<file>:<line>:<col>: optimized: loop vectorized ..."
    vectorized = set()
    for line in proc.stderr.splitlines():
        match = re.search(r":(\d+):\d+: optimized: loop vectorized", line)
        if match:
            vectorized.add(int(match.group(1)))

    failures = []
    for sentinel, anchor in anchors.items():
        hits = [n for n in vectorized
                if anchor <= n <= anchor + WINDOW]
        if not hits:
            failures.append(
                f"'{sentinel}' (line {anchor}): no 'loop vectorized' remark "
                f"within {WINDOW} lines")
        else:
            print(f"'{sentinel}': vectorized at line {hits[0]}")
    if failures:
        near = ", ".join(str(n) for n in sorted(vectorized)) or "none"
        for failure in failures:
            print(failure, file=sys.stderr)
        print(f"vectorized loop lines reported by the compiler: {near}",
              file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
