#!/usr/bin/env python3
"""Cross-check the metric inventory in docs/observability.md against the
registrations in src/.

Source side: every `counter("...")` / `timer(...)` / `gauge(...)` /
`histogram(...)` / `append_series(...)` / `bump(...)` call under src/ is
scanned for string-literal metric names.  A literal ending in '.'
composed with a runtime suffix (`counter("service.op." + op)`) is
recorded as a *prefix* registration.

Doc side: the inventory is the bullet list of the "## Metric names"
section of docs/observability.md — every inline-code token there shaped
like a dot-separated metric name is an entry.  (Only the bullets count:
prose elsewhere names spans and examples, which are not metrics.)
Entries may use two pattern forms: a trailing `.*` wildcard
(`trajectory.*`) and `<placeholder>` segments (`service.op.<op>`).

Checked in both directions:

  * every registered name (and every prefix registration) must be
    covered by some documented entry;
  * every documented *exact* entry (no wildcard, no placeholder) must be
    registered in the sources.

Usage: check_metrics.py [repo_root]   (exits non-zero listing every
mismatch; wired into ctest as `metrics_check`).
"""

import re
import sys
from pathlib import Path

CALL = re.compile(
    r"\b(?:bump|counter|timer|gauge|histogram|append_series)\s*\(")
STRING_LITERAL = re.compile(r'"((?:[^"\\]|\\.)*)"')
# A metric name: two or more lowercase dot-separated segments.
NAME = re.compile(r"^[a-z0-9_]+(?:\.[a-z0-9_]+)+$")
# A documented entry may add `.*` wildcards and `<placeholder>` segments.
DOC_ENTRY = re.compile(r"^[a-z0-9_]+(?:\.(?:[a-z0-9_]+|<[a-z0-9_]+>|\*))+$")
INLINE_CODE = re.compile(r"`([^`\n]+)`")


def call_argument(text: str, start: int) -> str:
    """The argument list of the call whose '(' is at text[start]."""
    depth = 0
    in_string = False
    i = start
    while i < len(text):
        c = text[i]
        if in_string:
            if c == "\\":
                i += 1
            elif c == '"':
                in_string = False
        elif c == '"':
            in_string = True
        elif c == "(":
            depth += 1
        elif c == ")":
            depth -= 1
            if depth == 0:
                return text[start + 1 : i]
        i += 1
    return text[start + 1 :]


def scan_sources(root: Path):
    """(exact names, prefix registrations) found under src/."""
    exact, prefixes = {}, {}
    for path in sorted((root / "src").rglob("*.[ch]pp")):
        text = path.read_text(encoding="utf-8")
        for m in CALL.finditer(text):
            args = call_argument(text, m.end() - 1)
            for lit_match in STRING_LITERAL.finditer(args):
                lit = lit_match.group(1)
                where = f"{path.relative_to(root)}"
                # `"service.op." + op`: a composed name — record the
                # literal as a prefix registration.
                composed = args[lit_match.end() :].lstrip().startswith("+")
                if lit.endswith(".") and composed and NAME.match(lit[:-1]):
                    prefixes.setdefault(lit, where)
                elif NAME.match(lit):
                    exact.setdefault(lit, where)
    return exact, prefixes


def scan_docs(doc: Path):
    """Inventory entries: the "## Metric names" section's bullets."""
    entries = set()
    in_section = False
    in_bullet = False
    for line in doc.read_text(encoding="utf-8").splitlines():
        if line.startswith("## "):
            in_section = line.strip() == "## Metric names"
            continue
        if not in_section:
            continue
        if line.startswith("* "):
            in_bullet = True
        elif not (in_bullet and line.startswith("  ")):
            in_bullet = False
            continue
        for token in INLINE_CODE.findall(line):
            if DOC_ENTRY.match(token):
                entries.add(token)
    return entries


def entry_regex(entry: str) -> "re.Pattern[str]":
    out = []
    for piece in re.split(r"(<[a-z0-9_]+>|\*)", entry):
        if piece == "*":
            out.append(r".+")
        elif piece.startswith("<"):
            out.append(r"[^.]+")
        else:
            out.append(re.escape(piece))
    return re.compile("^" + "".join(out) + "$")


def main() -> int:
    root = Path(sys.argv[1]) if len(sys.argv) > 1 else Path(".")
    doc = root / "docs" / "observability.md"
    if not doc.is_file():
        print(f"missing {doc}", file=sys.stderr)
        return 1

    exact, prefixes = scan_sources(root)
    entries = scan_docs(doc)
    patterns = [(e, entry_regex(e)) for e in sorted(entries)]

    problems = []
    for name, where in sorted(exact.items()):
        if not any(rx.match(name) for _, rx in patterns):
            problems.append(
                f"{where}: metric '{name}' is registered but not in the "
                f"docs/observability.md inventory")
    for prefix, where in sorted(prefixes.items()):
        sample = prefix + "x"
        if not any(rx.match(sample) for _, rx in patterns):
            problems.append(
                f"{where}: prefix registration '{prefix}<...>' has no "
                f"matching docs/observability.md entry")

    for entry in sorted(entries):
        if "<" in entry or "*" in entry:
            continue  # patterns are only checked source -> docs
        if entry in exact:
            continue
        if any(entry.startswith(p) for p in prefixes):
            continue
        problems.append(
            f"docs/observability.md: metric '{entry}' is documented but "
            f"never registered under src/")

    for p in problems:
        print(p, file=sys.stderr)
    if problems:
        print(f"\n{len(problems)} metric inventory mismatch(es)",
              file=sys.stderr)
        return 1
    count = len(exact) + len(prefixes)
    print(f"metrics check ok: {count} registration(s) against "
          f"{len(entries)} documented entr(y/ies)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
