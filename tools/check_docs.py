#!/usr/bin/env python3
"""Verify that docs/*.md and README.md only reference things that exist.

Two kinds of references are checked:

  * path-like tokens (``src/trajectory/batch.h``, ``docs/math.md``,
    ``tests/trajectory/batch_test.cpp``, ``bench/bench_batch.cpp``,
    ``build/bench/bench_batch``) must resolve to a file in the tree
    (``build/...`` paths are mapped back to their sources);
  * C++ symbol tokens (``trajectory::reanalyze_with``,
    ``Engine::run_fixed_point``, ``EngineStats::test_points``) — the
    final identifier, together with its qualifier, must appear somewhere
    under src/ or tests/.

Additionally, every file under docs/ must be *reachable*: referenced (as
an inline-code path or Markdown link) from README.md or from another doc.
An orphaned doc is one nobody can discover from the entry points.

Finally, the wire-protocol reference and the implementation are
cross-checked in both directions: every operation named in
docs/service.md's operation table must exist in the `Op::k...` switch of
src/service/protocol.cpp, and every implemented operation must have a
table row — a new op cannot ship undocumented, and the docs cannot
describe an op that was renamed or removed.

Usage: check_docs.py [repo_root]   (exits non-zero listing every broken
reference; wired into ctest as `docs_check`).
"""

import re
import sys
from pathlib import Path

CODE_DIRS = ("src", "tests", "bench", "examples", "tools")
DOC_FILES = ("README.md", "docs")

# `inline code` spans are where docs make checkable claims.
INLINE_CODE = re.compile(r"`([^`\n]+)`")
PATH_TOKEN = re.compile(
    r"^(?:src|tests|bench|examples|tools|docs|build)/[\w./\-]+$")
SYMBOL_TOKEN = re.compile(r"^[A-Za-z_]\w*(?:::[A-Za-z_~]\w*)+(?:\(\))?$")
# Markdown links: [text](target)
MD_LINK = re.compile(r"\]\(([^)#\s]+)\)")
# Plain-prose doc mentions ("see docs/math.md") count for reachability.
DOC_MENTION = re.compile(r"\bdocs/[\w\-]+\.md\b")

# Qualified names whose left part is a namespace alias the docs use
# informally; the right part is still required to exist.
IGNORED_QUALIFIERS = {"std", "tfa"}


def list_doc_files(root: Path):
    yield root / "README.md"
    yield from sorted((root / "docs").glob("*.md"))


def load_code(root: Path) -> str:
    chunks = []
    for d in CODE_DIRS:
        base = root / d
        if not base.is_dir():
            continue
        for p in sorted(base.rglob("*")):
            if p.suffix in {".h", ".cpp", ".py", ".txt", ".cmake"}:
                chunks.append(p.read_text(errors="replace"))
    return "\n".join(chunks)


def resolve_path(root: Path, token: str) -> bool:
    token = token.rstrip("/.,;:")
    if (root / token).exists():
        return True
    if token.startswith("build/"):
        # Build artefacts: map bench/test/example binaries to sources.
        stem = Path(token).name
        for d in ("bench", "examples", "tests", "tools"):
            if (root / d / f"{stem}.cpp").exists():
                return True
        # Directories like build/examples/ refer to the build tree.
        return token.rstrip("/") in {"build", "build/bench", "build/examples"}
    return False


def check_symbol(code: str, token: str):
    """Return None if ok, else a short explanation."""
    token = token.rstrip("().")
    parts = token.split("::")
    if parts[0] in IGNORED_QUALIFIERS:
        parts = parts[1:]
    if len(parts) == 1:
        return None  # bare identifier after alias stripping: not checkable
    leaf = parts[-1]
    qualifier = parts[-2]
    if re.search(re.escape(leaf) + r"\b", code) is None:
        return f"identifier '{leaf}' not found in the tree"
    # The qualifier must exist too (class, namespace, or struct name).
    if re.search(re.escape(qualifier) + r"\b", code) is None:
        return f"qualifier '{qualifier}' not found in the tree"
    return None


# Wire names in protocol.cpp's to_string switch: `case Op::kX: return "x";`
IMPLEMENTED_OP = re.compile(r'case\s+Op::k\w+:\s*return\s+"(\w+)"')
# Operation-table rows in docs/service.md: the first cell is the op in
# backticks (`| \`analyze\` | ... |`).
DOCUMENTED_OP = re.compile(r"^\|\s*`(\w+)`\s*\|")


def check_service_ops(root: Path) -> list:
    """docs/service.md's op table must match protocol.cpp, both ways."""
    protocol = root / "src" / "service" / "protocol.cpp"
    doc = root / "docs" / "service.md"
    if not protocol.is_file() or not doc.is_file():
        return []  # nothing to cross-check in a partial tree
    implemented = set(IMPLEMENTED_OP.findall(
        protocol.read_text(errors="replace")))
    # Only the operation table counts: the rows between a `| op ...`
    # header and the end of that table.  Other tables (error codes,
    # metrics) may also lead with backticked cells.
    documented = set()
    in_op_table = False
    for line in doc.read_text(errors="replace").splitlines():
        if re.match(r"^\|\s*op\b", line):
            in_op_table = True
            continue
        if not in_op_table:
            continue
        if not line.startswith("|"):
            in_op_table = False
            continue
        match = DOCUMENTED_OP.match(line)
        if match:
            documented.add(match.group(1))
    errors = []
    for op in sorted(documented - implemented):
        errors.append(
            f"docs/service.md: op '{op}' is documented but not implemented "
            "in src/service/protocol.cpp")
    for op in sorted(implemented - documented):
        errors.append(
            f"docs/service.md: op '{op}' is implemented in "
            "src/service/protocol.cpp but has no operation-table row")
    if not implemented:
        errors.append(
            "tools/check_docs.py: no ops parsed from "
            "src/service/protocol.cpp — update IMPLEMENTED_OP")
    return errors


def check_docs_index(root: Path, references: dict) -> list:
    """Every docs/*.md must be referenced from README.md or another doc."""
    errors = []
    for doc in sorted((root / "docs").glob("*.md")):
        rel = str(doc.relative_to(root))
        referencing = {src for src, targets in references.items()
                       if rel in targets and src != rel}
        if not referencing:
            errors.append(
                f"{rel}: orphaned doc — not referenced from README.md or "
                "any other doc")
    return errors


def main() -> int:
    root = Path(sys.argv[1]) if len(sys.argv) > 1 else Path(__file__).parents[1]
    code = load_code(root)
    errors = []
    # doc file -> set of repo-relative doc paths it references.
    references = {}
    for doc in list_doc_files(root):
        text = doc.read_text(errors="replace")
        rel = doc.relative_to(root)
        outgoing = references.setdefault(str(rel), set())
        for lineno, line in enumerate(text.splitlines(), 1):
            for mention in DOC_MENTION.findall(line):
                if (root / mention).exists():
                    outgoing.add(mention)
            tokens = INLINE_CODE.findall(line)
            tokens += MD_LINK.findall(line)
            for tok in tokens:
                tok = tok.strip()
                if PATH_TOKEN.match(tok):
                    if not resolve_path(root, tok):
                        errors.append(f"{rel}:{lineno}: missing file '{tok}'")
                    else:
                        outgoing.add(tok.rstrip("/.,;:"))
                elif SYMBOL_TOKEN.match(tok):
                    why = check_symbol(code, tok)
                    if why:
                        errors.append(f"{rel}:{lineno}: '{tok}': {why}")
                elif tok.endswith(".md") and (root / "docs" / tok).exists():
                    # Relative links between docs ("math.md", "[x](math.md)").
                    outgoing.add(f"docs/{tok}")
    errors += check_docs_index(root, references)
    errors += check_service_ops(root)
    for e in errors:
        print(e)
    if errors:
        print(f"{len(errors)} broken doc reference(s)")
        return 1
    print("all doc references resolve")
    return 0


if __name__ == "__main__":
    sys.exit(main())
