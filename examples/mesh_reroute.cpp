// Assumption-1 in the wild: a mesh network where an engineering reroute
// makes one flow weave across another's path, leave it, and come back.
// The paper's recipe (Section 2.2) treats the returning flow as a new
// flow from the re-entry point on; the library applies the splitting
// automatically and reports a composed bound for the affected flow.
#include <cstdio>
#include <string>

#include "base/table.h"
#include "model/flow_set.h"
#include "model/normalize.h"
#include "sim/worst_case_search.h"
#include "trajectory/analysis.h"

int main() {
  using namespace tfa;

  // 3x3 mesh, row-major node ids:
  //   0 1 2
  //   3 4 5
  //   6 7 8
  model::FlowSet mesh(model::Network(9, 1, 2));

  // A latency-critical flow crossing the middle row.
  mesh.add(model::SporadicFlow("express", model::Path{3, 4, 5}, 60, 5, 0,
                               120));
  // A provisioning flow originally routed around the edge, rerouted
  // through the mesh: it touches the express path at 4, detours via 1,
  // and returns to it at 5 — an Assumption-1 violation.
  mesh.add(model::SporadicFlow("provision", model::Path{0, 4, 1, 5, 8}, 90,
                               7, 0, 400));
  // Background column traffic.
  mesh.add(model::SporadicFlow("column", model::Path{1, 4, 7}, 80, 6, 0,
                               300));

  std::printf("Assumption 1 satisfied before analysis: %s\n",
              model::satisfies_assumption1(mesh) ? "yes" : "no");

  // analyze() normalises internally; the report shows what it did.
  const auto norm = model::normalise(mesh);
  std::printf("normaliser performed %zu split(s); flows afterwards:\n",
              norm.split_count);
  for (std::size_t i = 0; i < norm.flow_set.size(); ++i) {
    const auto& f = norm.flow_set.flow(static_cast<FlowIndex>(i));
    std::printf("  %-12s %s\n", f.name().c_str(),
                f.path().to_string().c_str());
  }

  const trajectory::Result result = trajectory::analyze(mesh);

  sim::SearchConfig search;
  search.random_runs = 32;
  const sim::SearchOutcome obs = sim::find_worst_case(mesh, search);

  TextTable t({"flow", "bound", "composed?", "observed", "deadline",
               "verdict"});
  for (const auto& b : result.bounds) {
    const auto& f = mesh.flow(b.flow);
    t.add_row({f.name(), format_duration(b.response),
               b.composed ? "yes (split segments)" : "no",
               format_duration(obs.stats[static_cast<std::size_t>(b.flow)]
                                   .worst),
               std::to_string(f.deadline()),
               b.schedulable ? "meets" : "MISSES"});
  }
  std::printf("\n%s", t.to_string().c_str());
  std::printf("\nthe rerouted flow gets a composed bound: trajectory "
              "analysis per segment,\nsummed across the split — exactly "
              "the paper's 'consider it a new flow' rule.\n");
  return result.all_schedulable ? 0 : 1;
}
