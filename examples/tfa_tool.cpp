// tfa_tool — the command-line front end a deployment would script around.
//
//   tfa_tool analyze  <flowset.txt>            bounds + verdicts table
//   tfa_tool report   <flowset.txt> [out.md]   full Markdown report
//   tfa_tool simulate <flowset.txt> [runs]     adversarial worst-case search
//   tfa_tool admit    <flowset.txt>            replay flows through admission
//   tfa_tool generate <seed> [flows] [nodes]   emit a random set (text format)
//   tfa_tool fuzz     [cases] [seed] [workers]  differential property sweep
//                     [--corpus DIR]            (write shrunk repros to DIR)
//
// `analyze` and `admit` accept a trailing `--stats` flag that appends the
// run's EngineStats (fixed-point passes, test points, wall time per phase,
// cache hits — see docs/performance.md).
//
// Run without arguments for this usage text; every subcommand exits 0 on
// success, 1 on a negative verdict, 2 on usage/parse errors.
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include "admission/admission.h"
#include "base/rng.h"
#include "base/table.h"
#include "model/generators.h"
#include "model/serialize.h"
#include "proptest/fuzzer.h"
#include "report/report.h"
#include "sim/worst_case_search.h"
#include "trajectory/analysis.h"

namespace {

using namespace tfa;

int usage() {
  std::fprintf(stderr,
               "usage: tfa_tool analyze|report|simulate|admit <flowset.txt>\n"
               "       tfa_tool generate <seed> [flows] [nodes]\n"
               "       tfa_tool fuzz [cases] [seed] [workers] [--corpus DIR]\n"
               "       (analyze/admit take --stats to print analysis cost)\n");
  return 2;
}

bool load(const char* path, model::FlowSet& out) {
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "cannot open %s\n", path);
    return false;
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  const model::ParseResult parsed = model::parse_flow_set(buf.str());
  if (!parsed.ok()) {
    std::fprintf(stderr, "%s:%d: %s\n", path, parsed.error_line,
                 parsed.error.c_str());
    return false;
  }
  out = *parsed.flow_set;
  return true;
}

int cmd_analyze(const model::FlowSet& set, bool with_stats) {
  const trajectory::Result r = trajectory::analyze(set);
  TextTable t({"flow", "deadline", "bound", "jitter", "verdict"});
  for (const auto& b : r.bounds) {
    const auto& f = set.flow(b.flow);
    t.add_row({f.name(), std::to_string(f.deadline()),
               format_duration(b.response), format_duration(b.jitter),
               b.schedulable ? "meets" : "MISSES"});
  }
  std::printf("%s", t.to_string().c_str());
  if (with_stats) std::printf("\n%s", report::stats_text(r.stats).c_str());
  return r.all_schedulable ? 0 : 1;
}

int cmd_report(const model::FlowSet& set, const char* out_path) {
  report::ReportConfig cfg;
  cfg.include_simulation = true;
  const std::string doc = report::markdown_report(set, cfg);
  if (out_path != nullptr) {
    std::ofstream out(out_path);
    if (!out) {
      std::fprintf(stderr, "cannot write %s\n", out_path);
      return 2;
    }
    out << doc;
    std::printf("report written to %s\n", out_path);
  } else {
    std::printf("%s", doc.c_str());
  }
  return 0;
}

int cmd_simulate(const model::FlowSet& set, std::size_t runs) {
  sim::SearchConfig cfg;
  cfg.random_runs = runs;
  const sim::SearchOutcome obs = sim::find_worst_case(set, cfg);
  const trajectory::Result r = trajectory::analyze(set);
  TextTable t({"flow", "observed worst", "bound", "obs/bound"});
  bool sound = true;
  for (const auto& b : r.bounds) {
    const auto i = static_cast<std::size_t>(b.flow);
    if (obs.stats[i].worst > b.response) sound = false;
    t.add_row({set.flow(b.flow).name(),
               format_duration(obs.stats[i].worst),
               format_duration(b.response),
               is_infinite(b.response)
                   ? "-"
                   : format_fixed(static_cast<double>(obs.stats[i].worst) /
                                      static_cast<double>(b.response),
                                  2)});
  }
  std::printf("%s%zu scenarios; bounds %s\n", t.to_string().c_str(),
              obs.runs, sound ? "hold" : "VIOLATED");
  return sound ? 0 : 1;
}

int cmd_admit(const model::FlowSet& set, bool with_stats) {
  admission::AdmissionController ctrl(set.network());
  int rejected = 0;
  for (const auto& f : set.flows()) {
    const admission::Decision d = ctrl.request(f);
    std::printf("%-16s %s (bound %s)\n", f.name().c_str(),
                d.admitted ? "admitted" : ("REJECTED: " + d.reason).c_str(),
                format_duration(d.candidate_bound).c_str());
    if (!d.admitted) ++rejected;
  }
  std::printf("%zu admitted, %d rejected\n", ctrl.admitted().size(),
              rejected);
  // Stats of the final request: a warm-started incremental re-analysis
  // whenever the previous request was admitted.
  if (with_stats)
    std::printf("\n%s", report::stats_text(ctrl.last_stats()).c_str());
  return rejected == 0 ? 0 : 1;
}

int cmd_generate(std::uint64_t seed, std::int32_t flows, std::int32_t nodes) {
  Rng rng(seed);
  model::RandomConfig cfg;
  cfg.flows = flows;
  cfg.nodes = nodes;
  const model::FlowSet set = model::make_random(cfg, rng);
  std::printf("%s", model::serialize_flow_set(set).c_str());
  return 0;
}

int cmd_fuzz(std::size_t cases, std::uint64_t seed, std::size_t workers,
             const char* corpus_dir) {
  proptest::FuzzConfig cfg;
  if (cases > 0) cfg.cases = cases;
  if (seed != 0) cfg.seed = seed;
  cfg.workers = workers;
  if (corpus_dir != nullptr) cfg.corpus_dir = corpus_dir;
  const proptest::FuzzReport report = proptest::run_fuzz(cfg);
  std::printf("%s", proptest::report_text(report).c_str());
  return report.clean() ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string cmd = argv[1];

  // A trailing --stats anywhere after the subcommand enables the
  // EngineStats dump (analyze/admit).
  bool with_stats = false;
  for (int a = argc - 1; a >= 2; --a) {
    if (std::string(argv[a]) == "--stats") {
      with_stats = true;
      for (int b = a; b + 1 < argc; ++b) argv[b] = argv[b + 1];
      --argc;
    }
  }

  if (cmd == "fuzz") {
    const char* corpus_dir = nullptr;
    for (int a = 2; a + 1 < argc; ++a) {
      if (std::string(argv[a]) == "--corpus") {
        corpus_dir = argv[a + 1];
        for (int b = a; b + 2 < argc; ++b) argv[b] = argv[b + 2];
        argc -= 2;
        break;
      }
    }
    const auto cases =
        argc > 2 ? static_cast<std::size_t>(std::atoll(argv[2])) : 0;
    // Base 0 so hex sweep seeds round-trip ("fuzz 2000 0xbeef").
    const auto seed =
        argc > 3 ? std::strtoull(argv[3], nullptr, 0) : std::uint64_t{0};
    const auto workers =
        argc > 4 ? static_cast<std::size_t>(std::atoi(argv[4])) : 0;
    return cmd_fuzz(cases, seed, workers, corpus_dir);
  }

  if (cmd == "generate") {
    if (argc < 3) return usage();
    const auto seed = static_cast<std::uint64_t>(std::atoll(argv[2]));
    const std::int32_t flows = argc > 3 ? std::atoi(argv[3]) : 8;
    const std::int32_t nodes = argc > 4 ? std::atoi(argv[4]) : 12;
    if (flows <= 0 || nodes <= 1) return usage();
    return cmd_generate(seed, flows, nodes);
  }

  if (argc < 3) return usage();
  model::FlowSet set;
  if (!load(argv[2], set)) return 2;
  if (const auto issues = set.validate(); !issues.empty()) {
    std::fprintf(stderr, "invalid flow set: %s\n",
                 issues.front().message.c_str());
    return 2;
  }

  if (cmd == "analyze") return cmd_analyze(set, with_stats);
  if (cmd == "report") return cmd_report(set, argc > 3 ? argv[3] : nullptr);
  if (cmd == "simulate")
    return cmd_simulate(set, argc > 3
                                 ? static_cast<std::size_t>(std::atoi(argv[3]))
                                 : 32);
  if (cmd == "admit") return cmd_admit(set, with_stats);
  return usage();
}
