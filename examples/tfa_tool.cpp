// tfa_tool — the command-line front end a deployment would script around.
//
//   tfa_tool analyze  <flowset.txt>            bounds + verdicts table
//   tfa_tool report   <flowset.txt> [out.md]   full Markdown report
//   tfa_tool simulate <flowset.txt> [runs]     adversarial worst-case search
//   tfa_tool admit    <flowset.txt>            replay flows through admission
//   tfa_tool provision <flowset.txt>           per-node buffer sizing
//                     [--capacity N]            (flag unsizeable/over-capacity)
//                     [--what-if "flow ..."]    headroom under a flow add
//   tfa_tool generate <seed> [flows] [nodes]   emit a random set (text format)
//   tfa_tool fuzz     [cases] [seed] [workers]  differential property sweep
//                     [--corpus DIR]            (write shrunk repros to DIR)
//   tfa_tool serve    [--workers N] [--max-batch N]
//                     [--tcp PORT | --unix PATH]
//                     [--max-conns N] [--executors N]
//                     [--event-log PATH [--event-log-level LVL]
//                      [--event-sample N]] [--slow-ms N]
//                     [--metrics-port PORT]
//                     long-lived analysis service (JSON-lines protocol —
//                     see docs/service.md) over stdin/stdout, or with
//                     --tcp/--unix over a concurrent socket listener
//                     (--tcp 0 picks an ephemeral port, printed to
//                     stderr; Ctrl-C or a client `shutdown` drains).
//                     --event-log appends structured JSON-lines events
//                     (accepts, sheds, deadline misses, shard merges,
//                     flight-recorder dumps — docs/observability.md);
//                     --slow-ms arms the flight recorder's latency
//                     trigger; --metrics-port (socket mode only) serves
//                     Prometheus text on 127.0.0.1:PORT (0 = ephemeral)
//
// `analyze` and `admit` accept a trailing `--stats` flag that appends the
// run's EngineStats (fixed-point passes, test points, wall time per phase,
// cache hits — see docs/performance.md).  `analyze`, `admit` and `fuzz`
// additionally accept `--trace-out FILE` (Chrome trace-event JSON, load in
// chrome://tracing or Perfetto) and `--metrics-out FILE` (the metric
// registry dump — see docs/observability.md).
//
// Options are extracted with base/options.h (OptionParser); an
// unrecognised `--option` is a usage error.  Run without arguments for the
// usage text; every subcommand exits 0 on success, 1 on a negative
// verdict, 2 on usage/parse errors.
#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <optional>
#include <sstream>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "admission/admission.h"
#include "base/options.h"
#include "obs/eventlog.h"
#include "base/rng.h"
#include "base/table.h"
#include "model/generators.h"
#include "model/serialize.h"
#include "obs/telemetry.h"
#include "proptest/fuzzer.h"
#include "provision/planner.h"
#include "report/report.h"
#include "service/serve.h"
#include "service/service.h"
#include "service/socket_transport.h"
#include "sim/worst_case_search.h"
#include "trajectory/analysis.h"

namespace {

using namespace tfa;

int usage() {
  std::fprintf(
      stderr,
      "usage: tfa_tool analyze|report|simulate|admit <flowset.txt>\n"
      "       tfa_tool provision <flowset.txt> [--capacity N]\n"
      "                      [--what-if \"flow ...\"]\n"
      "       tfa_tool generate <seed> [flows] [nodes]\n"
      "       tfa_tool fuzz [cases] [seed] [workers] [--corpus DIR]\n"
      "       tfa_tool serve [--workers N] [--max-batch N]\n"
      "                      [--tcp PORT | --unix PATH]\n"
      "                      [--max-conns N] [--executors N]\n"
      "                      [--event-log PATH [--event-log-level LVL]\n"
      "                       [--event-sample N]] [--slow-ms N]\n"
      "                      [--metrics-port PORT]\n"
      "       (analyze/admit take --stats to print analysis cost;\n"
      "        analyze/admit/fuzz take --trace-out FILE and\n"
      "        --metrics-out FILE for Chrome-trace / metric JSON dumps)\n");
  return 2;
}

bool load(const std::string& path, model::FlowSet& out) {
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "cannot open %s\n", path.c_str());
    return false;
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  const model::ParseResult parsed = model::parse_flow_set(buf.str());
  if (!parsed.ok()) {
    std::fprintf(stderr, "%s:%d: %s\n", path.c_str(), parsed.error_line,
                 parsed.error.c_str());
    return false;
  }
  out = *parsed.flow_set;
  return true;
}

/// Observability sinks requested on the command line.  The Telemetry is
/// only materialised when at least one output file was asked for, so runs
/// without the flags keep the exact zero-instrumentation paths.
struct ObsOutputs {
  std::optional<std::string> trace_path;
  std::optional<std::string> metrics_path;
  obs::Telemetry telemetry;

  [[nodiscard]] bool wanted() const noexcept {
    return trace_path.has_value() || metrics_path.has_value();
  }
  [[nodiscard]] obs::Telemetry* sink() noexcept {
    return wanted() ? &telemetry : nullptr;
  }

  /// Writes the requested dumps; returns false (after a diagnostic) when
  /// a file cannot be written.
  [[nodiscard]] bool flush() {
    const auto write = [](const std::string& path, const std::string& body) {
      std::ofstream out(path);
      if (out) out << body;
      if (!out) {
        std::fprintf(stderr, "cannot write %s\n", path.c_str());
        return false;
      }
      return true;
    };
    bool ok = true;
    if (trace_path)
      ok = write(*trace_path, telemetry.trace.chrome_trace_json()) && ok;
    if (metrics_path)
      ok = write(*metrics_path, telemetry.metrics.to_json()) && ok;
    return ok;
  }
};

int cmd_analyze(const model::FlowSet& set, bool with_stats, ObsOutputs& obs) {
  const trajectory::Result r = trajectory::analyze(set, {}, obs.sink());
  TextTable t({"flow", "deadline", "bound", "jitter", "verdict"});
  for (const auto& b : r.bounds) {
    const auto& f = set.flow(b.flow);
    t.add_row({f.name(), std::to_string(f.deadline()),
               format_duration(b.response), format_duration(b.jitter),
               b.schedulable ? "meets" : "MISSES"});
  }
  std::printf("%s", t.to_string().c_str());
  if (with_stats) std::printf("\n%s", report::stats_text(r.stats).c_str());
  if (!obs.flush()) return 2;
  return r.all_schedulable ? 0 : 1;
}

int cmd_report(const model::FlowSet& set, const char* out_path) {
  report::ReportConfig cfg;
  cfg.include_simulation = true;
  const std::string doc = report::markdown_report(set, cfg);
  if (out_path != nullptr) {
    std::ofstream out(out_path);
    if (!out) {
      std::fprintf(stderr, "cannot write %s\n", out_path);
      return 2;
    }
    out << doc;
    std::printf("report written to %s\n", out_path);
  } else {
    std::printf("%s", doc.c_str());
  }
  return 0;
}

int cmd_simulate(const model::FlowSet& set, std::size_t runs) {
  sim::SearchConfig cfg;
  cfg.random_runs = runs;
  const sim::SearchOutcome obs = sim::find_worst_case(set, cfg);
  const trajectory::Result r = trajectory::analyze(set);
  TextTable t({"flow", "observed worst", "bound", "obs/bound"});
  bool sound = true;
  for (const auto& b : r.bounds) {
    const auto i = static_cast<std::size_t>(b.flow);
    if (obs.stats[i].worst > b.response) sound = false;
    t.add_row({set.flow(b.flow).name(),
               format_duration(obs.stats[i].worst),
               format_duration(b.response),
               is_infinite(b.response)
                   ? "-"
                   : format_fixed(static_cast<double>(obs.stats[i].worst) /
                                      static_cast<double>(b.response),
                                  2)});
  }
  std::printf("%s%zu scenarios; bounds %s\n", t.to_string().c_str(),
              obs.runs, sound ? "hold" : "VIOLATED");
  return sound ? 0 : 1;
}

int cmd_admit(const model::FlowSet& set, bool with_stats, ObsOutputs& obs) {
  admission::AdmissionController ctrl(set.network());
  ctrl.attach_telemetry(obs.sink());
  int rejected = 0;
  for (const auto& f : set.flows()) {
    const admission::Decision d = ctrl.request(f);
    std::printf("%-16s %s (bound %s)\n", f.name().c_str(),
                d.admitted ? "admitted" : ("REJECTED: " + d.reason).c_str(),
                format_duration(d.candidate_bound).c_str());
    if (!d.admitted) ++rejected;
  }
  std::printf("%zu admitted, %d rejected\n", ctrl.admitted().size(),
              rejected);
  // Stats of the final request: a warm-started incremental re-analysis
  // whenever the previous request was admitted.
  if (with_stats)
    std::printf("\n%s", report::stats_text(ctrl.last_stats()).c_str());
  if (!obs.flush()) return 2;
  return rejected == 0 ? 0 : 1;
}

/// Parses one `flow ...` line against `set`'s network by round-tripping
/// through the text format (the service's what-if idiom).
std::optional<model::SporadicFlow> parse_probe(const model::FlowSet& set,
                                               const std::string& line,
                                               std::string* why) {
  std::ostringstream text;
  text << "network " << set.network().node_count() << ' '
       << set.network().lmin() << ' ' << set.network().lmax() << '\n'
       << line << '\n';
  const model::ParseResult parsed = model::parse_flow_set(text.str());
  if (!parsed.ok()) {
    *why = parsed.error;
    return std::nullopt;
  }
  if (parsed.flow_set->size() != 1) {
    *why = "expected exactly one flow line";
    return std::nullopt;
  }
  return parsed.flow_set->flow(0);
}

int cmd_provision(const model::FlowSet& set, Duration capacity,
                  const std::optional<std::string>& what_if,
                  ObsOutputs& obs) {
  provision::Config cfg;
  cfg.capacity = capacity;
  const provision::Plan plan = provision::plan(set, cfg, obs.sink());
  TextTable t({"node", "exact", "work", "packets", "binding flow",
               "constraint", "verdict"});
  for (const provision::NodeBuffer& nb : plan.nodes) {
    std::string exact = "-";
    if (nb.sizeable) {
      exact = std::to_string(nb.exact.num());
      if (nb.exact.den() != 1) exact += "/" + std::to_string(nb.exact.den());
    }
    std::string binding = "-";
    std::string constraint = "-";
    if (nb.binding_flow != kNoFlow) {
      binding = set.flow(nb.binding_flow).name();
      constraint = nb.binding_segment == 0
                       ? "intrinsic"
                       : "segment " + std::to_string(nb.binding_segment);
    }
    const char* verdict = !nb.sizeable   ? "UNSIZEABLE"
                          : !nb.fits     ? "OVER"
                          : capacity > 0 ? "fits"
                                         : "ok";
    t.add_row({std::to_string(nb.node), exact, format_duration(nb.work),
               format_duration(nb.packets), binding, constraint, verdict});
  }
  std::printf("%s", t.to_string().c_str());
  std::printf("total buffer: %s work units; %s\n",
              format_duration(plan.total_work).c_str(),
              plan.all_fit ? "plan holds" : "plan does NOT hold");
  if (what_if) {
    std::string why;
    const auto probe = parse_probe(set, *what_if, &why);
    if (!probe) {
      std::fprintf(stderr, "bad --what-if flow: %s\n", why.c_str());
      return 2;
    }
    const std::size_t clones =
        provision::max_clones_within(set, *probe, capacity, cfg);
    const std::string target =
        capacity > 0 ? std::to_string(capacity) + " work units"
                     : std::string("finite buffers");
    std::printf("what-if headroom: %zu clone(s) of '%s' stay within %s\n",
                clones, probe->name().c_str(), target.c_str());
  }
  if (!obs.flush()) return 2;
  return plan.all_fit ? 0 : 1;
}

int cmd_generate(std::uint64_t seed, std::int32_t flows, std::int32_t nodes) {
  Rng rng(seed);
  model::RandomConfig cfg;
  cfg.flows = flows;
  cfg.nodes = nodes;
  const model::FlowSet set = model::make_random(cfg, rng);
  std::printf("%s", model::serialize_flow_set(set).c_str());
  return 0;
}

int cmd_fuzz(std::size_t cases, std::uint64_t seed, std::size_t workers,
             const std::optional<std::string>& corpus_dir, ObsOutputs& obs) {
  proptest::FuzzConfig cfg;
  if (cases > 0) cfg.cases = cases;
  if (seed != 0) cfg.seed = seed;
  cfg.workers = workers;
  if (corpus_dir) cfg.corpus_dir = *corpus_dir;
  cfg.telemetry = obs.sink();
  const proptest::FuzzReport report = proptest::run_fuzz(cfg);
  std::printf("%s", proptest::report_text(report).c_str());
  if (!obs.flush()) return 2;
  return report.clean() ? 0 : 1;
}

int cmd_serve(service::ServiceConfig cfg, ObsOutputs& obs) {
  service::Service svc(std::move(cfg), obs.sink());
  const service::ServeResult r =
      service::serve_stream(std::cin, std::cout, svc);
  std::fprintf(stderr, "served %llu request(s)%s\n",
               static_cast<unsigned long long>(r.requests),
               r.shutdown ? ", shut down" : "");
  if (!obs.flush()) return 2;
  return 0;
}

std::atomic<bool> g_interrupted{false};

extern "C" void on_serve_signal(int) { g_interrupted.store(true); }

int cmd_serve_socket(service::SocketServerConfig cfg, ObsOutputs& obs) {
  service::SocketServer server(std::move(cfg), obs.sink());
  std::string error;
  if (!server.start(&error)) {
    std::fprintf(stderr, "tfa_tool serve: %s\n", error.c_str());
    return 2;
  }
  if (server.path().empty())
    std::fprintf(stderr, "listening on 127.0.0.1:%u\n",
                 static_cast<unsigned>(server.port()));
  else
    std::fprintf(stderr, "listening on %s\n", server.path().c_str());
  if (server.metrics_port() != 0)
    std::fprintf(stderr, "metrics on http://127.0.0.1:%u/metrics\n",
                 static_cast<unsigned>(server.metrics_port()));
  g_interrupted.store(false);
  std::signal(SIGINT, on_serve_signal);
  std::signal(SIGTERM, on_serve_signal);
  // The loop exits on a client `shutdown` (running() drops) or a
  // signal; either way stop() drains queued work before returning.
  while (server.running() && !g_interrupted.load())
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
  server.stop();
  std::fprintf(
      stderr, "served %llu request(s) over %llu connection(s), %llu shed\n",
      static_cast<unsigned long long>(server.requests_served()),
      static_cast<unsigned long long>(server.connections_accepted()),
      static_cast<unsigned long long>(server.connections_shed()));
  if (!obs.flush()) return 2;
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  OptionParser opts(argc, argv);

  // Every option any subcommand understands is extracted here; whatever
  // still looks like an option afterwards is unknown and rejected, so a
  // typo fails loudly instead of being read as a positional.
  const bool with_stats = opts.flag("--stats");
  const std::optional<std::string> corpus_dir = opts.value("--corpus");
  const std::optional<std::string> provision_capacity =
      opts.value("--capacity");
  const std::optional<std::string> provision_what_if = opts.value("--what-if");
  const std::optional<std::string> serve_workers = opts.value("--workers");
  const std::optional<std::string> serve_batch = opts.value("--max-batch");
  const std::optional<std::string> serve_tcp = opts.value("--tcp");
  const std::optional<std::string> serve_unix = opts.value("--unix");
  const std::optional<std::string> serve_conns = opts.value("--max-conns");
  const std::optional<std::string> serve_exec = opts.value("--executors");
  const std::optional<std::string> serve_event_log = opts.value("--event-log");
  const std::optional<std::string> serve_event_level =
      opts.value("--event-log-level");
  const std::optional<std::string> serve_event_sample =
      opts.value("--event-sample");
  const std::optional<std::string> serve_metrics_port =
      opts.value("--metrics-port");
  const std::optional<std::string> serve_slow_ms = opts.value("--slow-ms");

  ObsOutputs obs;
  obs.trace_path = opts.value("--trace-out");
  obs.metrics_path = opts.value("--metrics-out");

  if (!opts.error().empty()) {
    std::fprintf(stderr, "tfa_tool: %s\n", opts.error().c_str());
    return usage();
  }
  if (const auto unknown = opts.unknown_options(); !unknown.empty()) {
    std::fprintf(stderr, "tfa_tool: unknown option %s\n",
                 unknown.front().c_str());
    return usage();
  }

  const std::vector<std::string> pos = opts.positionals();
  if (pos.empty()) return usage();
  const std::string& cmd = pos[0];

  if (cmd == "fuzz") {
    const auto cases =
        pos.size() > 1 ? static_cast<std::size_t>(std::atoll(pos[1].c_str()))
                       : std::size_t{0};
    // Base 0 so hex sweep seeds round-trip ("fuzz 2000 0xbeef").
    const auto seed = pos.size() > 2
                          ? std::strtoull(pos[2].c_str(), nullptr, 0)
                          : std::uint64_t{0};
    const auto workers =
        pos.size() > 3 ? static_cast<std::size_t>(std::atoi(pos[3].c_str()))
                       : std::size_t{0};
    return cmd_fuzz(cases, seed, workers, corpus_dir, obs);
  }

  if (cmd == "serve") {
    service::ServiceConfig svc_cfg;
    if (serve_workers)
      svc_cfg.workers =
          static_cast<std::size_t>(std::atoi(serve_workers->c_str()));
    if (serve_batch)
      if (const int b = std::atoi(serve_batch->c_str()); b > 0)
        svc_cfg.max_batch = static_cast<std::size_t>(b);
    if (serve_slow_ms)
      svc_cfg.slow_request_ns =
          std::atoll(serve_slow_ms->c_str()) * 1'000'000;

    // Structured event log: the ring is only observable through the
    // sink, so the knobs require --event-log.
    std::ofstream event_sink;
    std::optional<obs::EventLog> event_log;
    if (serve_event_log) {
      event_sink.open(*serve_event_log, std::ios::app);
      if (!event_sink) {
        std::fprintf(stderr, "tfa_tool: cannot write %s\n",
                     serve_event_log->c_str());
        return 2;
      }
      obs::EventLogConfig ecfg;
      if (serve_event_level) {
        const auto sev = obs::severity_from_string(*serve_event_level);
        if (!sev) {
          std::fprintf(stderr,
                       "tfa_tool: --event-log-level must be "
                       "debug|info|warn|error, got '%s'\n",
                       serve_event_level->c_str());
          return usage();
        }
        ecfg.min_severity = *sev;
      }
      if (serve_event_sample)
        if (const long long n = std::atoll(serve_event_sample->c_str()); n > 1)
          ecfg.sample_every = static_cast<std::uint64_t>(n);
      event_log.emplace(ecfg);
      event_log->set_sink(&event_sink);
      svc_cfg.event_log = &*event_log;
    } else if (serve_event_level || serve_event_sample) {
      std::fprintf(stderr,
                   "tfa_tool: --event-log-level/--event-sample require "
                   "--event-log\n");
      return usage();
    }

    if (serve_tcp || serve_unix) {
      if (serve_tcp && serve_unix) {
        std::fprintf(stderr, "tfa_tool: --tcp and --unix are exclusive\n");
        return usage();
      }
      service::SocketServerConfig cfg;
      if (serve_tcp)
        cfg.tcp_port = static_cast<std::uint16_t>(std::atoi(serve_tcp->c_str()));
      if (serve_unix) cfg.unix_path = *serve_unix;
      if (serve_conns)
        cfg.max_conns = static_cast<std::size_t>(std::atoi(serve_conns->c_str()));
      if (serve_exec)
        cfg.executors = static_cast<std::size_t>(std::atoi(serve_exec->c_str()));
      if (serve_metrics_port)
        cfg.metrics_port = std::atoi(serve_metrics_port->c_str());
      cfg.service = std::move(svc_cfg);
      return cmd_serve_socket(std::move(cfg), obs);
    }
    if (serve_metrics_port) {
      std::fprintf(stderr,
                   "tfa_tool: --metrics-port requires --tcp or --unix\n");
      return usage();
    }
    return cmd_serve(std::move(svc_cfg), obs);
  }

  if (cmd == "generate") {
    if (pos.size() < 2) return usage();
    const auto seed = static_cast<std::uint64_t>(std::atoll(pos[1].c_str()));
    const std::int32_t flows = pos.size() > 2 ? std::atoi(pos[2].c_str()) : 8;
    const std::int32_t nodes = pos.size() > 3 ? std::atoi(pos[3].c_str()) : 12;
    if (flows <= 0 || nodes <= 1) return usage();
    return cmd_generate(seed, flows, nodes);
  }

  if (pos.size() < 2) return usage();
  model::FlowSet set;
  if (!load(pos[1], set)) return 2;
  if (const auto issues = set.validate(); !issues.empty()) {
    std::fprintf(stderr, "invalid flow set: %s\n",
                 issues.front().message.c_str());
    return 2;
  }

  if (cmd == "analyze") return cmd_analyze(set, with_stats, obs);
  if (cmd == "report")
    return cmd_report(set, pos.size() > 2 ? pos[2].c_str() : nullptr);
  if (cmd == "simulate")
    return cmd_simulate(
        set, pos.size() > 2 ? static_cast<std::size_t>(std::atoi(pos[2].c_str()))
                            : 32);
  if (cmd == "admit") return cmd_admit(set, with_stats, obs);
  if (cmd == "provision") {
    Duration capacity = 0;
    if (provision_capacity) {
      const long long c = std::atoll(provision_capacity->c_str());
      if (c < 0) return usage();
      capacity = c;
    }
    return cmd_provision(set, capacity, provision_what_if, obs);
  }
  return usage();
}
