// VoIP over a DiffServ domain (paper Section 6): voice flows ride the EF
// class, bulk transfers ride AF/BE.  The example shows the full edge
// workflow:
//
//   1. police each voice source with a token bucket (EF is guaranteed
//      "up to a negotiated rate", RFC 2598),
//   2. admit calls one by one with Property-3 admission control
//      (trajectory analysis of the EF class over non-preemptive
//      background),
//   3. validate the certified bounds against the DiffServ router
//      simulation (fixed priority + WFQ, Figure 3).
//
// Ticks are 10 us: a G.729-like voice source emits a packet every 20 ms
// (2000 ticks) that takes 120 us (12 ticks) of store-and-forward work per
// router; the one-way delay budget is 20 ms of network time.
#include <cstdio>
#include <string>
#include <vector>

#include "admission/admission.h"
#include "base/table.h"
#include "diffserv/ef_analysis.h"
#include "diffserv/token_bucket.h"
#include "model/flow_set.h"

int main() {
  using namespace tfa;

  constexpr Duration kVoicePeriod = 2000;  // 20 ms
  constexpr Duration kVoiceCost = 12;      // 120 us per router
  constexpr Duration kVoiceJitter = 100;   // 1 ms ingress jitter
  constexpr Duration kVoiceBudget = 2000;  // 20 ms one-way budget

  // Edge-to-edge topology: two ingress routers (0, 1) feeding a 3-router
  // core (2, 3, 4) toward two egresses (5, 6).  Links take 5..10 ticks.
  const model::Network domain(7, 5, 10);

  // Ingress policing: each call negotiated one packet per period with a
  // burst of two — the classic token bucket of the traffic conditioner.
  diffserv::TokenBucket conditioner(/*tokens_per_period=*/1,
                                    /*period=*/kVoicePeriod, /*burst=*/2);
  Time now = 0;
  for (int pkt = 0; pkt < 4; ++pkt) {
    now = conditioner.next_conformance(now, 1);
    conditioner.consume(now, 1);
  }
  std::printf("ingress conditioner: 4 packets conform by t = %lld "
              "(negotiated rate holds)\n\n",
              static_cast<long long>(now));

  // Property-3 admission control for the EF class.
  admission::AdmissionController edge(domain,
                                      admission::AnalysisKind::kTrajectoryEf);

  // Background traffic is registered first: it is never analysed, but its
  // packet sizes determine the non-preemption delay of every call.
  const std::vector<model::SporadicFlow> background = {
      {"bulk-ftp", model::Path{0, 2, 3, 4, 5}, 5000, 96, 0, 1000000,
       model::ServiceClass::kBestEffort},
      {"video-af", model::Path{1, 2, 3, 4, 6}, 3000, 64, 0, 1000000,
       model::ServiceClass::kAssured1},
  };
  for (const auto& f : background) {
    const auto d = edge.request(f);
    std::printf("background %-10s -> %s\n", f.name().c_str(),
                d.reason.c_str());
  }

  // Calls arrive one by one until the analysis certifies a deadline miss.
  TextTable calls({"call", "route", "decision", "certified bound",
                   "budget"});
  int admitted = 0;
  for (int call = 0; call < 24; ++call) {
    const model::Path route = (call % 2 == 0)
                                  ? model::Path{0, 2, 3, 4, 5}
                                  : model::Path{1, 2, 3, 4, 6};
    model::SporadicFlow voice("call" + std::to_string(call), route,
                              kVoicePeriod, kVoiceCost, kVoiceJitter,
                              kVoiceBudget);
    const admission::Decision d = edge.request(voice);
    if (d.admitted) ++admitted;
    calls.add_row({voice.name(), route.to_string(),
                   d.admitted ? "admitted" : "REJECTED: " + d.reason,
                   format_duration(d.candidate_bound),
                   std::to_string(kVoiceBudget)});
    if (!d.admitted) break;  // the domain is full
  }
  std::printf("\n%s", calls.to_string().c_str());
  std::printf("\nadmitted %d calls; every certified bound is a hard "
              "guarantee, not a measurement.\n\n",
              admitted);

  // Validate the certified set against the DiffServ router simulation.
  sim::SearchConfig search;
  search.random_runs = 24;
  const diffserv::EfValidation v =
      diffserv::validate_ef(edge.admitted(), {}, search);
  std::printf("DiffServ simulation cross-check over %zu scenarios: %s\n",
              v.observed.runs,
              v.sound ? "no observed response exceeded its bound"
                      : "BOUND VIOLATED (bug!)");
  return v.sound ? 0 : 1;
}
