// Quickstart: the smallest complete tour of the public API.
//
//   1. describe a network and its sporadic flows,
//   2. run the trajectory analysis (Property 2),
//   3. read the worst-case end-to-end response-time bounds,
//   4. cross-check them against a packet-level simulation.
//
// Build & run:  cmake --build build && ./build/examples/quickstart
#include <cstdio>

#include "base/table.h"
#include "model/flow_set.h"
#include "sim/worst_case_search.h"
#include "trajectory/analysis.h"

int main() {
  using namespace tfa;

  // A 5-router network; every link delivers within [1, 2] ticks.
  model::FlowSet set(model::Network(/*node_count=*/5, /*lmin=*/1,
                                    /*lmax=*/2));

  // Three sporadic flows: (name, path, period T, per-node cost C,
  // release jitter J, end-to-end deadline D).
  set.add(model::SporadicFlow("video", model::Path{0, 1, 2, 3}, 50, 6, 0,
                              120));
  set.add(model::SporadicFlow("sensor", model::Path{4, 1, 2}, 30, 2, 3, 80));
  set.add(model::SporadicFlow("backup", model::Path{0, 1, 2}, 200, 10, 0,
                              400));

  // Worst-case analysis: every node schedules its packets FIFO.
  const trajectory::Result result = trajectory::analyze(set);

  // Empirical cross-check: adversarial + randomized simulations.
  sim::SearchConfig search;
  search.random_runs = 32;
  const sim::SearchOutcome observed = sim::find_worst_case(set, search);

  TextTable table({"flow", "deadline", "bound R_i", "jitter bound",
                   "worst observed", "schedulable"});
  for (const trajectory::FlowBound& b : result.bounds) {
    const model::SporadicFlow& f = set.flow(b.flow);
    table.add_row({f.name(), std::to_string(f.deadline()),
                   format_duration(b.response), format_duration(b.jitter),
                   format_duration(
                       observed.stats[static_cast<std::size_t>(b.flow)].worst),
                   b.schedulable ? "yes" : "NO"});
  }
  std::printf("%s", table.to_string().c_str());
  std::printf("\nall flows schedulable: %s\n",
              result.all_schedulable ? "yes" : "no");
  return result.all_schedulable ? 0 : 1;
}
