// Flow-set analyzer CLI: reads a flow set in the text format of
// model/serialize.h (from a file given as argv[1], or a built-in sample),
// prints the trajectory bounds with a full per-flow decomposition, and —
// with tracing — reconstructs a Figure-2 busy-period chain from an actual
// simulated packet.
//
// Usage:  analyze_flowset [flowset.txt]
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "base/table.h"
#include "model/serialize.h"
#include "sim/network_sim.h"
#include "trajectory/analysis.h"
#include "trajectory/explain.h"

namespace {

constexpr const char* kSample = R"(# built-in sample: a Y-shaped merge
network 6 1 2
flow camera   EF 120 0 400 path 0 2 3 4 costs 9
flow lidar    EF 100 5 400 path 1 2 3 4 costs 7
flow control  EF  80 0 300 path 5 3 4 costs 3
)";

}  // namespace

int main(int argc, char** argv) {
  using namespace tfa;

  std::string text = kSample;
  if (argc > 1) {
    std::ifstream in(argv[1]);
    if (!in) {
      std::fprintf(stderr, "cannot open %s\n", argv[1]);
      return 2;
    }
    std::ostringstream buf;
    buf << in.rdbuf();
    text = buf.str();
  } else {
    std::printf("(no file given: using the built-in sample)\n\n%s\n",
                kSample);
  }

  const model::ParseResult parsed = model::parse_flow_set(text);
  if (!parsed.ok()) {
    std::fprintf(stderr, "parse error (line %d): %s\n", parsed.error_line,
                 parsed.error.c_str());
    return 2;
  }
  const model::FlowSet& set = *parsed.flow_set;

  // Bounds table.
  const trajectory::Result result = trajectory::analyze(set);
  TextTable t({"flow", "class", "deadline", "bound", "jitter", "verdict"});
  for (const auto& b : result.bounds) {
    const auto& f = set.flow(b.flow);
    t.add_row({f.name(), model::to_string(f.service_class()),
               std::to_string(f.deadline()), format_duration(b.response),
               format_duration(b.jitter), b.schedulable ? "meets" : "MISSES"});
  }
  std::printf("%s\n", t.to_string().c_str());

  // Per-flow decomposition (the explainer re-derives and re-checks every
  // term of Property 2).
  const model::NormalisationReport norm = model::normalise(set);
  const trajectory::Engine engine(norm.flow_set, trajectory::Config{});
  for (std::size_t i = 0; i < norm.flow_set.size(); ++i) {
    const auto fi = static_cast<FlowIndex>(i);
    if (!engine.analysable(fi)) continue;
    std::printf("%s\n",
                trajectory::explain(engine, fi).to_string().c_str());
  }

  // A real busy-period chain (paper Figure 2) from a traced simulation.
  sim::SimConfig scfg;
  scfg.pattern = sim::ArrivalPattern::kSynchronousBurst;
  scfg.record_trace = true;
  sim::NetworkSim sim(set, scfg);
  sim.run();
  const FlowIndex probe = 0;
  const auto chain = sim::busy_period_chain(
      sim.trace(), set, probe, sim.stats()[0].worst_sequence >= 0
                                   ? sim.stats()[0].worst_sequence
                                   : 0);
  std::printf("busy-period chain of flow '%s' (Figure 2, simulated):\n",
              set.flow(probe).name().c_str());
  for (const auto& link : chain)
    std::printf("  node %d: busy period opened at t=%lld by %s#%lld; "
                "target served [%lld, %lld)\n",
                link.node, static_cast<long long>(link.busy_start),
                set.flow(link.opener.flow).name().c_str(),
                static_cast<long long>(link.opener.sequence),
                static_cast<long long>(link.target.start),
                static_cast<long long>(link.target.completion));

  return result.all_schedulable ? 0 : 1;
}
