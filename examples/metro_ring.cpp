// Metro aggregation network, end to end: declare the physical topology
// once, let the library route the flows (worst-case-delay shortest paths),
// run admission control over the routed set, and pinpoint each accepted
// flow's bottleneck hop from its per-hop response profile.
#include <cstdio>
#include <string>

#include "admission/admission.h"
#include "base/table.h"
#include "model/topology.h"
#include "trajectory/analysis.h"

int main() {
  using namespace tfa;

  // Physical plant: a 6-node metro ring (0..5) with two data-centre spurs
  // (6 off node 0, 7 off node 3).  Ring links are fast fibre; the spurs
  // are slower leased lines.
  model::Topology metro(8, 1, 2);
  for (NodeId k = 0; k < 6; ++k)
    metro.add_link({k, static_cast<NodeId>((k + 1) % 6), 1, 2});
  metro.add_link({6, 0, 4, 9});
  metro.add_link({7, 3, 4, 9});

  // Service requests: endpoints + traffic contract; routes are computed,
  // not hand-written.
  struct Request {
    const char* name;
    NodeId from, to;
    Duration period, cost, jitter, deadline;
  } requests[] = {
      {"dc-sync", 6, 7, 400, 18, 0, 800},
      {"cctv-1", 1, 6, 250, 12, 5, 700},
      {"cctv-2", 4, 7, 250, 12, 5, 700},
      {"telemetry", 2, 5, 150, 4, 2, 300},
      {"billing", 5, 6, 600, 24, 0, 1500},
  };

  admission::AdmissionController edge(metro.to_network());
  TextTable t({"flow", "route (auto)", "decision", "bound", "deadline"});
  for (const Request& rq : requests) {
    const auto route = metro.route(rq.from, rq.to);
    if (!route) {
      t.add_row({rq.name, "unreachable", "-", "-", "-"});
      continue;
    }
    model::SporadicFlow flow(rq.name, *route, rq.period, rq.cost, rq.jitter,
                             rq.deadline);
    const admission::Decision d = edge.request(flow);
    t.add_row({rq.name, route->to_string(),
               d.admitted ? "admitted" : "REJECTED: " + d.reason,
               format_duration(d.candidate_bound),
               std::to_string(rq.deadline)});
  }
  std::printf("%s\n", t.to_string().c_str());

  // Where is each accepted flow's delay earned?  The per-hop profile
  // points at the hop to upgrade first.
  const trajectory::Result bounds = trajectory::analyze(edge.admitted());
  std::printf("bottleneck hops (largest marginal delay):\n");
  for (const auto& b : bounds.bounds) {
    const auto& f = edge.admitted().flow(b.flow);
    const std::size_t pos = b.bottleneck_position();
    std::printf("  %-10s node %d (position %zu of %zu), profile:",
                f.name().c_str(), f.path().at(pos), pos, f.path().size());
    for (const Duration r : b.prefix_responses)
      std::printf(" %lld", static_cast<long long>(r));
    std::printf("\n");
  }
  return bounds.all_schedulable ? 0 : 1;
}
