// Control-command over a ring backbone (the paper's motivating class of
// applications, Section 1): sensor -> controller -> actuator loops with
// hard end-to-end deadlines and *jitter* requirements.
//
// The example contrasts the two analyses the paper compares: the control
// loops fit their deadlines under the trajectory bound but the holistic
// bound rejects several — the cost of deploying the pessimistic analysis
// would be buying a faster network for nothing.
#include <cstdio>
#include <string>
#include <vector>

#include "base/table.h"
#include "holistic/holistic.h"
#include "model/flow_set.h"
#include "sim/worst_case_search.h"
#include "trajectory/analysis.h"

namespace {

using namespace tfa;

/// An 8-switch industrial ring; ticks are microseconds, links take
/// exactly 2 us (cut-through switching), frames take 8 us per switch.
model::FlowSet build_plant() {
  model::FlowSet set(model::Network(8, 2, 2));

  // Four control loops: sensor data travels 3 hops clockwise to the
  // controller, the command travels 2 more hops to the actuator.  Loop
  // period 1 ms; the loop budget below is the network share of it.
  const struct {
    const char* name;
    std::vector<NodeId> route;
    Duration deadline;
  } loops[] = {
      {"loop-a/sense", {0, 1, 2, 3}, 160},
      {"loop-a/act", {3, 4, 5}, 130},
      {"loop-b/sense", {2, 3, 4, 5}, 160},
      {"loop-b/act", {5, 6, 7}, 130},
      {"loop-c/sense", {4, 5, 6, 7}, 160},
      {"loop-c/act", {7, 0, 1}, 130},
      {"loop-d/sense", {6, 7, 0, 1}, 160},
      {"loop-d/act", {1, 2, 3}, 130},
  };
  for (const auto& l : loops)
    set.add(model::SporadicFlow(l.name, model::Path(l.route), 1000, 8,
                                /*jitter=*/4, l.deadline));

  // Diagnostic/telemetry traffic sharing the ring (same FIFO class —
  // plain Property 2 territory, no DiffServ here).
  for (int k = 0; k < 4; ++k) {
    const NodeId start = static_cast<NodeId>(2 * k);
    set.add(model::SporadicFlow(
        "telemetry" + std::to_string(k),
        model::Path{start, static_cast<NodeId>((start + 1) % 8)}, 5000, 16,
        0, 100000));
  }
  return set;
}

}  // namespace

int main() {
  const model::FlowSet plant = build_plant();

  const trajectory::Result traj = trajectory::analyze(plant);
  const holistic::Result holi = holistic::analyze(plant);

  sim::SearchConfig search;
  search.random_runs = 32;
  const sim::SearchOutcome obs = sim::find_worst_case(plant, search);

  TextTable t({"flow", "deadline", "trajectory", "jitter", "holistic",
               "observed", "traj verdict", "holistic verdict"});
  int traj_ok = 0, holi_ok = 0, loops = 0;
  for (std::size_t i = 0; i < plant.size(); ++i) {
    const auto fi = static_cast<FlowIndex>(i);
    const model::SporadicFlow& f = plant.flow(fi);
    const auto* tb = traj.find(fi);
    const auto* hb = holi.find(fi);
    const bool is_loop = f.name().rfind("loop", 0) == 0;
    if (is_loop) {
      ++loops;
      traj_ok += tb->schedulable ? 1 : 0;
      holi_ok += hb->schedulable ? 1 : 0;
    }
    t.add_row({f.name(), std::to_string(f.deadline()),
               format_duration(tb->response), format_duration(tb->jitter),
               format_duration(hb->response),
               format_duration(obs.stats[i].worst),
               tb->schedulable ? "meets" : "MISSES",
               hb->schedulable ? "meets" : "MISSES"});
  }
  std::printf("%s", t.to_string().c_str());
  std::printf("\ncontrol loops certified: trajectory %d/%d, holistic "
              "%d/%d\n",
              traj_ok, loops, holi_ok, loops);
  std::printf("(the observed column is the simulator's adversarial lower "
              "bound — always\nwithin the trajectory bound, often close: "
              "the analysis is tight enough to act on)\n");
  return traj_ok == loops ? 0 : 1;
}
