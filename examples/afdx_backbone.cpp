// AFDX-style avionics backbone: virtual links with a bandwidth-allocation
// gap (BAG) as their sporadic period, slow end-system uplinks and a fast
// switch fabric — heterogeneous per-link delay bounds end to end.
//
// The example certifies every virtual link with the trajectory analysis,
// stresses the network with the adversarial simulation battery, and emits
// the Markdown change-request report to stdout.
#include <cstdio>

#include "base/table.h"
#include "model/generators.h"
#include "report/report.h"
#include "sim/worst_case_search.h"
#include "trajectory/analysis.h"

int main() {
  using namespace tfa;

  model::AfdxConfig cfg;
  cfg.end_systems = 4;
  cfg.switches = 3;
  cfg.virtual_links = 10;
  cfg.bag = 4000;        // 4 ms BAG at 1 us ticks
  cfg.frame_cost = 40;   // ~500-byte frame on a 100 Mbit/s port
  const model::FlowSet backbone = model::make_afdx(cfg);

  std::printf("AFDX backbone: %d end systems per side, %d switches, "
              "%zu virtual links\n"
              "uplinks [%lld, %lld] ticks, fabric [%lld, %lld] ticks\n\n",
              cfg.end_systems, cfg.switches, backbone.size(),
              static_cast<long long>(cfg.uplink_lmin),
              static_cast<long long>(cfg.uplink_lmax),
              static_cast<long long>(cfg.fabric_lmin),
              static_cast<long long>(cfg.fabric_lmax));

  const trajectory::Result bounds = trajectory::analyze(backbone);
  sim::SearchConfig search;
  search.random_runs = 32;
  const sim::SearchOutcome obs = sim::find_worst_case(backbone, search);

  TextTable t({"virtual link", "route", "latency bound", "jitter bound",
               "observed", "verdict"});
  for (const auto& b : bounds.bounds) {
    const auto& f = backbone.flow(b.flow);
    t.add_row({f.name(), f.path().to_string(), format_duration(b.response),
               format_duration(b.jitter),
               format_duration(obs.stats[static_cast<std::size_t>(b.flow)]
                                   .worst),
               b.schedulable ? "certified" : "MISSES"});
  }
  std::printf("%s\n", t.to_string().c_str());

  // The artefact an integration team would file with the change request.
  report::ReportConfig rcfg;
  rcfg.title = "AFDX backbone certification";
  rcfg.include_explanations = false;
  rcfg.include_simulation = false;
  std::printf("---- Markdown report ----\n%s",
              report::markdown_report(backbone, rcfg).c_str());
  return bounds.all_schedulable ? 0 : 1;
}
